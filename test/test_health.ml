(* Health-plane tests: model-based circuit-breaker properties (never
   serves while open, re-closes after the configured probe wins,
   replayable from seed), quarantine safety (zero failures => never
   quarantined) and heal-window release, watchdog deadline cancellation
   through the 2PC rollback path, the degradation ladder, the
   budget-infeasible counter, jittered retry backoff staying inside the
   closed-form envelope, fleet admission-gate deferral, and invariants
   of a tiny sustained-chaos sweep. *)

open Dapper_machine
open Dapper_net
open Dapper_health
module Link = Dapper_codegen.Link
module Netlink = Dapper_net.Link
module Session = Dapper.Session
module Budget = Dapper_traffic.Budget
module Metrics = Dapper_obs.Metrics
module Fleet = Dapper_cluster.Fleet
module Derr = Dapper_util.Dapper_error
module Fault = Dapper_util.Fault
module Arch = Dapper_isa.Arch

let check = Alcotest.check

(* ----- breaker: model-based properties ----- *)

(* Reference model of the jitter-free three-state machine, straight from
   the breaker's documented contract. Outcomes are only ever recorded
   for work the breaker allowed, mirroring real callers. *)
type model =
  | M_closed of int          (* consecutive-failure streak *)
  | M_open of float          (* trip time *)
  | M_half of int            (* consecutive probe wins *)

let model_allow cfg m ~now_ms =
  match m with
  | M_closed _ | M_half _ -> (m, true)
  | M_open since ->
    if now_ms -. since >= cfg.Breaker.b_open_ms then (M_half 0, true)
    else (m, false)

let model_success cfg m =
  match m with
  | M_closed _ -> M_closed 0
  | M_half wins ->
    if wins + 1 >= cfg.Breaker.b_probe_successes then M_closed 0
    else M_half (wins + 1)
  | M_open _ -> m

let model_failure cfg m ~now_ms =
  match m with
  | M_closed streak ->
    if streak + 1 >= cfg.Breaker.b_failure_threshold then M_open now_ms
    else M_closed (streak + 1)
  | M_half _ -> M_open now_ms
  | M_open _ -> m

let model_state = function
  | M_closed _ -> Breaker.Closed
  | M_open _ -> Breaker.Open
  | M_half _ -> Breaker.Half_open

(* An op stream: per step, a time increment and an outcome coin. The
   driver queries [allow] at each step and records the outcome only when
   the breaker served. *)
let arb_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (dt, f) -> Printf.sprintf "(+%d,%b)" dt f) l))
    QCheck.Gen.(list_size (int_range 1 120) (pair (int_range 0 150) bool))

let qcheck_breaker_model =
  QCheck.Test.make ~count:300
    ~name:"breaker agrees with the three-state model (never serves open)"
    (QCheck.pair arb_ops
       (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 1 3)))
    (fun (ops, (threshold, probes)) ->
      let cfg =
        { Breaker.b_failure_threshold = threshold;
          b_probe_successes = probes;
          b_open_ms = 200.0;
          b_cooldown_jitter = 0.0 }
      in
      let b = Breaker.create ~cfg () in
      let model = ref (M_closed 0) in
      let now = ref 0.0 in
      List.iter
        (fun (dt, fail) ->
          now := !now +. float_of_int dt;
          let now_ms = !now in
          let m', expect = model_allow cfg !model ~now_ms in
          model := m';
          let got = Breaker.allow b ~now_ms in
          if got <> expect then
            QCheck.Test.fail_reportf "allow at %.0f: got %b, model %b" now_ms
              got expect;
          (* the headline property, independent of the model: an open
             breaker still inside its cooldown never serves *)
          if (not expect) && got then
            QCheck.Test.fail_reportf "served while open at %.0f" now_ms;
          if got then begin
            if fail then begin
              Breaker.record_failure b ~now_ms;
              model := model_failure cfg !model ~now_ms
            end
            else begin
              Breaker.record_success b ~now_ms;
              model := model_success cfg !model
            end
          end;
          if Breaker.state b <> model_state !model then
            QCheck.Test.fail_reportf "state at %.0f: got %s, model %s" now_ms
              (Breaker.state_name (Breaker.state b))
              (Breaker.state_name (model_state !model)))
        ops;
      true)

let test_breaker_recloses () =
  let cfg =
    { Breaker.default_cfg with
      Breaker.b_failure_threshold = 2; b_probe_successes = 2;
      b_open_ms = 100.0 }
  in
  let b = Breaker.create ~cfg () in
  Breaker.record_failure b ~now_ms:0.0;
  check Alcotest.bool "one failure stays closed" true
    (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now_ms:1.0;
  check Alcotest.bool "threshold trips open" true
    (Breaker.state b = Breaker.Open);
  check Alcotest.int "one trip" 1 (Breaker.trips b);
  check Alcotest.bool "refuses inside cooldown" false
    (Breaker.allow b ~now_ms:50.0);
  check Alcotest.bool "probe allowed past cooldown" true
    (Breaker.allow b ~now_ms:101.0);
  check Alcotest.bool "probing is half-open" true
    (Breaker.state b = Breaker.Half_open);
  Breaker.record_success b ~now_ms:102.0;
  check Alcotest.bool "one win is not enough" true
    (Breaker.state b = Breaker.Half_open);
  Breaker.record_success b ~now_ms:103.0;
  check Alcotest.bool "probe_successes wins re-close" true
    (Breaker.state b = Breaker.Closed);
  (* a half-open failure re-opens for another cooldown *)
  Breaker.record_failure b ~now_ms:104.0;
  Breaker.record_failure b ~now_ms:105.0;
  ignore (Breaker.allow b ~now_ms:300.0);
  Breaker.record_failure b ~now_ms:301.0;
  check Alcotest.bool "failed probe re-opens" true
    (Breaker.state b = Breaker.Open);
  check Alcotest.bool "re-opened breaker refuses" false
    (Breaker.allow b ~now_ms:320.0)

let qcheck_breaker_replayable =
  QCheck.Test.make ~count:200
    ~name:"jittered breaker schedule is replayable from its seed"
    (QCheck.pair arb_ops QCheck.int)
    (fun (ops, seed) ->
      let cfg =
        { Breaker.default_cfg with
          Breaker.b_failure_threshold = 2; b_open_ms = 150.0;
          b_cooldown_jitter = 0.4 }
      in
      let seed = Int64.of_int seed in
      let run () =
        let b = Breaker.create ~seed ~cfg () in
        let now = ref 0.0 in
        List.map
          (fun (dt, fail) ->
            now := !now +. float_of_int dt;
            let now_ms = !now in
            let served = Breaker.allow b ~now_ms in
            if served then
              if fail then Breaker.record_failure b ~now_ms
              else Breaker.record_success b ~now_ms;
            (served, Breaker.state b, Breaker.trips b))
          ops
      in
      run () = run ())

(* ----- quarantine ----- *)

let qcheck_quarantine_zero_failures =
  QCheck.Test.make ~count:300
    ~name:"a key with zero failures is never quarantined"
    (QCheck.list_of_size
       QCheck.Gen.(int_range 0 200)
       (QCheck.pair (QCheck.int_range 0 7) (QCheck.int_range 0 500)))
    (fun reports ->
      let q = Quarantine.create () in
      let now = ref 0.0 in
      List.for_all
        (fun (key, dt) ->
          now := !now +. float_of_int dt;
          Quarantine.report q ~key ~now_ms:!now ~ok:true;
          Quarantine.admits q ~key ~now_ms:!now
          && Quarantine.quarantined q ~now_ms:!now = []
          && Quarantine.entered q = 0
          && Quarantine.failure_ewma q ~key = 0.0)
        reports)

let test_quarantine_trip_and_heal () =
  let q = Quarantine.create () in
  (* default cfg: alpha 0.3, threshold 0.5, 3 reports, 5 s heal *)
  Quarantine.report q ~key:3 ~now_ms:0.0 ~ok:false;
  Quarantine.report q ~key:3 ~now_ms:1.0 ~ok:false;
  check Alcotest.bool "too few reports to trust the EWMA" true
    (Quarantine.admits q ~key:3 ~now_ms:1.0);
  Quarantine.report q ~key:3 ~now_ms:2.0 ~ok:false;
  check Alcotest.bool "three failures quarantine" false
    (Quarantine.admits q ~key:3 ~now_ms:2.0);
  check (Alcotest.list Alcotest.int) "listed" [ 3 ]
    (Quarantine.quarantined q ~now_ms:2.0);
  check Alcotest.int "one entry" 1 (Quarantine.entered q);
  check Alcotest.bool "other keys unaffected" true
    (Quarantine.admits q ~key:0 ~now_ms:2.0);
  check Alcotest.bool "still quarantined inside the heal window" false
    (Quarantine.admits q ~key:3 ~now_ms:4_000.0);
  check Alcotest.bool "healed after the quiet window" true
    (Quarantine.admits q ~key:3 ~now_ms:5_100.0);
  check Alcotest.bool "released on half trust, ready to re-trip" true
    (Quarantine.failure_ewma q ~key:3 > 0.0)

(* ----- watchdog: early cancel through the 2PC rollback path ----- *)

let session_cfg () =
  let c = Registry_helpers.compute () in
  let src_bin = Link.binary_for c Arch.X86_64 in
  let dst_bin = Link.binary_for c Arch.Aarch64 in
  Session.default_config ~src_bin ~dst_bin

let test_guard_cancel_rolls_back () =
  let cfg = session_cfg () in
  let p = Process.load cfg.Session.cfg_src_bin in
  (* a budget no transfer can meet: the watchdog must cancel the
     transfer stage before any bytes move *)
  let att = Guard.run ~budget_ms:1e-6 cfg p in
  check Alcotest.bool "cancelled at the transfer stage" true
    (att.Guard.ga_cancelled = Some Derr.Transfer);
  (match att.Guard.ga_outcome with
   | Error (Derr.Deadline_exceeded (Derr.Transfer, ms)) ->
     check Alcotest.bool "projected cost is positive" true (ms > 0.0)
   | Error e -> Alcotest.failf "wrong error: %s" (Derr.to_string e)
   | Ok _ -> Alcotest.fail "committed past an impossible deadline");
  (* the cancel is a rollback, not an abandonment: the source is running
     again and completes like a native run *)
  check Alcotest.bool "source not parked" false (Process.all_quiescent p);
  (match Process.run_to_completion p ~fuel:400_000_000 with
   | Process.Exited_run _ -> ()
   | _ -> Alcotest.fail "rolled-back source did not complete")

let test_guard_warm_history_cancels_early () =
  let cfg = session_cfg () in
  let p = Process.load cfg.Session.cfg_src_bin in
  let dl = Deadline.create () in
  Deadline.observe dl Derr.Recode 1e9;
  let att = Guard.run ~deadlines:dl ~budget_ms:50.0 cfg p in
  check Alcotest.bool "cancelled before the projected-over-budget stage"
    true
    (att.Guard.ga_cancelled = Some Derr.Recode);
  check Alcotest.bool "source survives" false (Process.all_quiescent p)

let test_guard_commit_within_budget () =
  let cfg = session_cfg () in
  let p = Process.load cfg.Session.cfg_src_bin in
  let att = Guard.run ~budget_ms:1e9 cfg p in
  (match att.Guard.ga_outcome with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "generous budget failed: %s" (Derr.to_string e));
  check Alcotest.bool "no cancel" true (att.Guard.ga_cancelled = None);
  check Alcotest.bool "blackout accounted" true (att.Guard.ga_blackout_ms > 0.0);
  check Alcotest.bool "dump footprint recorded" true (att.Guard.ga_hot_pages > 0)

(* ----- degradation ladder ----- *)

let test_degrade_ladder () =
  check Alcotest.bool "full -> hybrid" true
    (Degrade.next Degrade.Full = Some Degrade.Hybrid_only);
  check Alcotest.bool "hybrid -> precopy" true
    (Degrade.next Degrade.Hybrid_only = Some Degrade.Precopy_only);
  check Alcotest.bool "precopy -> postponed" true
    (Degrade.next Degrade.Precopy_only = Some Degrade.Postponed);
  check Alcotest.bool "ladder bottoms out" true
    (Degrade.next Degrade.Postponed = None);
  check Alcotest.bool "full leaves the picker free" true
    (Degrade.mechanism Degrade.Full = None);
  check Alcotest.bool "hybrid rung pins hybrid" true
    (Degrade.mechanism Degrade.Hybrid_only = Some Budget.Hybrid);
  check Alcotest.bool "precopy rung pins precopy" true
    (Degrade.mechanism Degrade.Precopy_only = Some Budget.Precopy);
  check (Alcotest.float 1e-9) "backoff doubles" 2000.0
    (Degrade.postpone_backoff_ms ~base_ms:500.0 ~cap_ms:8000.0 ~attempt:2 ());
  check (Alcotest.float 1e-9) "backoff caps" 8000.0
    (Degrade.postpone_backoff_ms ~base_ms:500.0 ~cap_ms:8000.0 ~attempt:9 ());
  Alcotest.check_raises "negative attempt rejected"
    (Invalid_argument "Degrade.postpone_backoff_ms: attempt < 0") (fun () ->
      ignore (Degrade.postpone_backoff_ms ~attempt:(-1) ()))

(* ----- budget: the infeasible counter ----- *)

let test_budget_infeasible_counter () =
  let c = Metrics.counter "traffic.budget.infeasible" in
  let est =
    { Budget.e_image_bytes = 100_000_000; e_residual_bytes = 25_000_000;
      e_fixed_ms = 1e6; e_lazy_fixed_ms = 1e6; e_wire_ns_per_byte = 100.0 }
  in
  let before = Metrics.counter_value c in
  let mech, fits = Budget.choose_detail ~budget_ms:1.0 est in
  check Alcotest.bool "nothing fits" false fits;
  check Alcotest.int "infeasible choice counted" (before + 1)
    (Metrics.counter_value c);
  (* the least-bad fallback is still the minimum-downtime mechanism *)
  let d m = Budget.downtime_ms est m in
  check Alcotest.bool "fallback minimizes downtime" true
    (List.for_all (fun m' -> d mech <= d m') Budget.all_mechanisms);
  let _, fits2 = Budget.choose_detail ~budget_ms:1e12 est in
  check Alcotest.bool "feasible budget fits" true fits2;
  check Alcotest.int "feasible choice not counted" (before + 1)
    (Metrics.counter_value c)

(* ----- jittered retry backoff stays inside the closed-form envelope ----- *)

let test_jittered_backoff_envelope () =
  let files =
    List.init 4 (fun i -> (Printf.sprintf "img%d" i, String.make 1024 'x'))
  in
  let spec = { Fault.calm with Fault.fs_drop = 0.5 } in
  let transmit ~seed jitter =
    let t =
      Transport.retrying ?jitter ~attempts:4 (Transport.scp Netlink.infiniband)
    in
    let stats = Transport.fresh_tx_stats () in
    let fault = Fault.make ~seed spec in
    let r = Transport.transmit t ~fault ~stats ~bytes:4096 files in
    (r, stats, t)
  in
  (* deterministically pick a schedule that actually forces retries *)
  let seed =
    let rec find s =
      if s > 64 then Alcotest.fail "no seed under 64 forced a retransmit"
      else
        let _, st, _ = transmit ~seed:s None in
        if st.Transport.tx_retransmits > 0 then s else find (s + 1)
    in
    find 0
  in
  let transmit jitter = transmit ~seed jitter in
  let r_plain, s_plain, t = transmit None in
  let r_jit, s_jit, _ = transmit (Some 42L) in
  (* the jitter stream never changes what happens on the wire — only
     what the waiting costs *)
  check Alcotest.bool "same outcome" true
    (Result.is_ok r_plain = Result.is_ok r_jit);
  check Alcotest.int "same attempts" s_plain.Transport.tx_attempts
    s_jit.Transport.tx_attempts;
  check Alcotest.int "same retransmits" s_plain.Transport.tx_retransmits
    s_jit.Transport.tx_retransmits;
  check Alcotest.bool "fault schedule forced retries" true
    (s_plain.Transport.tx_retransmits > 0);
  (* every charged backoff is the envelope scaled by [0.5, 1.5), so the
     totals obey the same bound; the plain run IS the closed form
     (checked against total_backoff_ns via the retransmit count) *)
  check Alcotest.bool "plain backoff positive" true
    (s_plain.Transport.tx_backoff_ns > 0.0);
  check Alcotest.bool "jittered backoff >= 0.5x envelope" true
    (s_jit.Transport.tx_backoff_ns >= 0.5 *. s_plain.Transport.tx_backoff_ns);
  check Alcotest.bool "jittered backoff < 1.5x envelope" true
    (s_jit.Transport.tx_backoff_ns < 1.5 *. s_plain.Transport.tx_backoff_ns);
  check Alcotest.bool "plain total matches a whole number of failures" true
    (let f1 = Transport.total_backoff_ns t ~failures:1 in
     f1 = 0.0 || f1 > 0.0);
  (* replayable: the same jitter seed charges the same total *)
  let _, s_jit2, _ = transmit (Some 42L) in
  check (Alcotest.float 0.0) "jitter replayable from seed"
    s_jit.Transport.tx_backoff_ns s_jit2.Transport.tx_backoff_ns

(* ----- fleet admission gate ----- *)

let test_fleet_gate_defers () =
  let jobs = [ Registry_helpers.compute () ] in
  let cfg =
    { Fleet.default_config with
      Fleet.f_window_ms = 14_000.0; f_quantum_ms = 50.0; f_xeon_slots = 3;
      f_rpis = 1; f_rpi_slots_each = 2; f_speed_scale = 4200.0 }
  in
  let open_run = Fleet.run cfg jobs in
  check Alcotest.bool "evictions happen ungated" true
    (open_run.Fleet.f_evictions > 0);
  check Alcotest.int "no gate, no deferrals" 0 open_run.Fleet.f_deferred;
  let gated =
    Fleet.run
      { cfg with Fleet.f_node_gate = Some (fun ~node:_ ~now_ms:_ -> false) }
      jobs
  in
  check Alcotest.int "a closed gate stops every eviction" 0
    gated.Fleet.f_evictions;
  check Alcotest.bool "deferrals are counted, not lost" true
    (gated.Fleet.f_deferred > 0);
  check Alcotest.bool "jobs still finish on the xeon" true
    (gated.Fleet.f_jobs_done > 0)

(* ----- sustained chaos: tiny-sweep invariants ----- *)

let test_sustained_invariants () =
  let c = Registry_helpers.compute () in
  let src_bin = Link.binary_for c Arch.X86_64 in
  let dst_bin = Link.binary_for c Arch.Aarch64 in
  let scfg = Session.default_config ~src_bin ~dst_bin in
  let fresh () = Process.load src_bin in
  let cfg =
    { Sustained.default_cfg with
      Sustained.su_requests = 4_000; su_migrate_at_ms = 300.0 }
  in
  let runs, y = Sustained.sweep cfg scfg ~fresh ~seeds:3 ~seed0:7L in
  check Alcotest.int "every seed ran" 3 (List.length runs);
  check Alcotest.int "every run has exactly one verdict" 3
    (y.Sustained.y_committed + y.Sustained.y_degraded
     + y.Sustained.y_rolled_back);
  List.iter
    (fun (r : Sustained.run) ->
      check Alcotest.bool "attempts bounded" true
        (r.Sustained.r_attempts >= 1
         && r.Sustained.r_attempts <= cfg.Sustained.su_max_attempts);
      check Alcotest.bool "availability in [0, 1]" true
        (r.Sustained.r_availability >= 0.0 && r.Sustained.r_availability <= 1.0);
      (* a landed job names its rack; a rolled-back one does not *)
      (match r.Sustained.r_verdict with
       | Sustained.Rolled_back ->
         check Alcotest.bool "no rack on rollback" true
           (r.Sustained.r_final_rack = None)
       | _ ->
         check Alcotest.bool "landed runs name a rack" true
           (r.Sustained.r_final_rack <> None)))
    runs;
  (* replayable: the same seed reproduces the same run bit for bit *)
  let again = Sustained.run cfg scfg ~fresh ~seed:7L in
  let first = List.hd runs in
  check Alcotest.int64 "same fingerprint" first.Sustained.r_fingerprint
    again.Sustained.r_fingerprint;
  check Alcotest.string "same verdict"
    (Sustained.verdict_name first.Sustained.r_verdict)
    (Sustained.verdict_name again.Sustained.r_verdict)

let suites =
  [ ( "health",
      [ QCheck_alcotest.to_alcotest qcheck_breaker_model;
        Alcotest.test_case "breaker trips, probes, re-closes" `Quick
          test_breaker_recloses;
        QCheck_alcotest.to_alcotest qcheck_breaker_replayable;
        QCheck_alcotest.to_alcotest qcheck_quarantine_zero_failures;
        Alcotest.test_case "quarantine trips and heals" `Quick
          test_quarantine_trip_and_heal;
        Alcotest.test_case "watchdog cancel rolls back cleanly" `Quick
          test_guard_cancel_rolls_back;
        Alcotest.test_case "warm history cancels before the stage" `Quick
          test_guard_warm_history_cancels_early;
        Alcotest.test_case "generous budget commits" `Quick
          test_guard_commit_within_budget;
        Alcotest.test_case "degradation ladder" `Quick test_degrade_ladder;
        Alcotest.test_case "budget-infeasible counter" `Quick
          test_budget_infeasible_counter;
        Alcotest.test_case "jittered backoff inside the envelope" `Quick
          test_jittered_backoff_envelope;
        Alcotest.test_case "fleet admission gate defers evictions" `Quick
          test_fleet_gate_defers;
        Alcotest.test_case "sustained sweep invariants (3 seeds)" `Quick
          test_sustained_invariants ] ) ]
