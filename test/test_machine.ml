open Dapper_isa
open Dapper_binary
open Dapper_machine
open Dapper_clite
open Cl
module Link = Dapper_codegen.Link

let check = Alcotest.check

(* ----- memory ----- *)

let test_memory_cross_page () =
  let mem = Memory.create () in
  Memory.map_page mem 10 (Bytes.make Layout.page_size '\000');
  Memory.map_page mem 11 (Bytes.make Layout.page_size '\000');
  let addr = Int64.of_int ((11 * Layout.page_size) - 3) in
  Memory.write_u64 mem addr 0x1122334455667788L;
  check Alcotest.bool "cross-page u64" true
    (Int64.equal (Memory.read_u64 mem addr) 0x1122334455667788L);
  let s = "cross-page-string" in
  Memory.write_bytes mem addr s;
  check Alcotest.string "cross-page bytes" s (Memory.read_bytes mem addr (String.length s))

let test_memory_segfault () =
  let mem = Memory.create () in
  check Alcotest.bool "segfault" true
    (match Memory.read_u64 mem 0x12345L with
     | exception Memory.Segfault _ -> true
     | _ -> false)

let test_memory_fault_handler () =
  let mem = Memory.create () in
  Memory.set_fault_handler mem
    (Some (fun pn -> if pn < 100 then Some (Bytes.make Layout.page_size 'x') else None));
  check Alcotest.int "served" (Char.code 'x') (Memory.read_u8 mem 4096L);
  check Alcotest.int "fault count" 1 (Memory.fault_count mem);
  check Alcotest.bool "beyond handler" true
    (match Memory.read_u8 mem (Int64.of_int (200 * Layout.page_size)) with
     | exception Memory.Segfault _ -> true
     | _ -> false)

let test_memory_copy_independent () =
  let mem = Memory.create () in
  Memory.map_page mem 5 (Bytes.make Layout.page_size '\000');
  Memory.write_u64 mem (Int64.of_int (5 * Layout.page_size)) 7L;
  let mem2 = Memory.copy mem in
  Memory.write_u64 mem2 (Int64.of_int (5 * Layout.page_size)) 9L;
  check Alcotest.bool "original unchanged" true
    (Int64.equal (Memory.read_u64 mem (Int64.of_int (5 * Layout.page_size))) 7L)

(* ----- processes ----- *)

let compile_simple body =
  let m = create "t" in
  Cstd.add m;
  func m "main" [] body;
  Link.compile ~app:"t" (finish m)

let test_deterministic_execution () =
  let c = Registry_helpers.compute () in
  let run () =
    let p = Process.load c.Link.cp_x86 in
    ignore (Process.run_to_completion p ~fuel:50_000_000);
    (p.Process.total_instrs, Process.stdout_contents p)
  in
  check Alcotest.bool "two runs identical" true (run () = run ())

let test_division_by_zero_crashes () =
  let c =
    compile_simple (fun b ->
        decl b "zero" (i 0);
        ret b (div_ (i 5) (v "zero")))
  in
  let p = Process.load c.Link.cp_x86 in
  (match Process.run_to_completion p ~fuel:1_000_000 with
   | Process.Crashed cr ->
     check Alcotest.bool "reason mentions division" true
       (String.length cr.cr_reason > 0 && p.Process.crash <> None)
   | _ -> Alcotest.fail "expected crash")

let test_wild_pointer_crashes () =
  let c =
    compile_simple (fun b ->
        declp b "p" (i 0x31337);
        ret b (deref (v "p")))
  in
  let p = Process.load c.Link.cp_x86 in
  match Process.run_to_completion p ~fuel:1_000_000 with
  | Process.Crashed _ -> ()
  | _ -> Alcotest.fail "expected segfault"

let test_sbrk_growth () =
  let c =
    compile_simple (fun b ->
        declp b "a" (call "sbrk" [ i 100_000 ]);
        store_idx b (v "a") (i 12_000) (i 42);
        ret b (idx (v "a") (i 12_000)))
  in
  List.iter
    (fun arch ->
      let p = Process.load (Link.binary_for c arch) in
      match Process.run_to_completion p ~fuel:1_000_000 with
      | Process.Exited_run 42L -> ()
      | _ -> Alcotest.fail "sbrk region not usable")
    Arch.all

let test_stack_demand_growth () =
  (* deep recursion touches far more stack than the initially mapped top *)
  let m = create "deep" in
  Cstd.add m;
  func m "down" [ ("n", Dapper_ir.Ir.I64) ] (fun b ->
      decl_arr b "pad" 16;
      store_idx b (addr "pad") (i 0) (v "n");
      if_ b (le (v "n") (i 0)) (fun b -> ret b (idx (addr "pad") (i 0)));
      ret b (call "down" [ sub (v "n") (i 1) ]));
  func m "main" [] (fun b -> ret b (call "down" [ i 400 ]));
  let c = Link.compile ~app:"deep" (finish m) in
  List.iter
    (fun arch ->
      let p = Process.load (Link.binary_for c arch) in
      match Process.run_to_completion p ~fuel:10_000_000 with
      | Process.Exited_run 0L ->
        check Alcotest.bool "stack pages faulted in" true
          (Memory.fault_count p.Process.mem > 0)
      | _ -> Alcotest.fail "deep recursion failed")
    Arch.all

let test_spawn_limit () =
  let m = create "spawner" in
  Cstd.add m;
  func m "worker" [ ("x", Dapper_ir.Ir.I64) ] (fun b ->
      while_ b (i 1) (fun b -> do_ b (call "yield" [])));
  func m "main" [] (fun b ->
      decl b "fails" (i 0);
      for_ b "k" (i 0) (i 100) (fun b ->
          if_ b (lt (call "spawn" [ fnptr "worker"; v "k" ]) (i 0)) (fun b ->
              set b "fails" (add (v "fails") (i 1))));
      do_ b (call "exit" [ v "fails" ]);
      ret b (i 0));
  let c = Link.compile ~app:"spawner" (finish m) in
  let p = Process.load c.Link.cp_x86 in
  match Process.run_to_completion p ~fuel:10_000_000 with
  | Process.Exited_run fails ->
    (* 100 spawn attempts; tids 1.. up to Layout.max_threads-1 succeed *)
    check Alcotest.int "spawns rejected past the limit"
      (100 - (Layout.max_threads - 1))
      (Int64.to_int fails)
  | _ -> Alcotest.fail "spawner did not finish"

let test_join_unknown_tid () =
  let c =
    compile_simple (fun b -> ret b (call "join" [ i 59 ]))
  in
  let p = Process.load c.Link.cp_x86 in
  match Process.run_to_completion p ~fuel:1_000_000 with
  | Process.Exited_run v -> check Alcotest.bool "join(-1) on unknown" true (v = -1L)
  | _ -> Alcotest.fail "join on unknown tid should not hang"

let test_deadlock_detection () =
  let m = create "dl" in
  Cstd.add m;
  global m "mtx" 8;
  func m "main" [] (fun b ->
      do_ b (call "lock" [ addr "mtx" ]);
      do_ b (call "lock" [ addr "mtx" ]);
      ret b (i 0));
  let c = Link.compile ~app:"dl" (finish m) in
  let p = Process.load c.Link.cp_x86 in
  match Process.run_to_completion p ~fuel:1_000_000 with
  | Process.Idle -> ()
  | _ -> Alcotest.fail "self-deadlock should report Idle"

let test_clock_monotonic () =
  let c =
    compile_simple (fun b ->
        decl b "t1" (call "clock" []);
        decl b "x" (i 0);
        for_ b "k" (i 0) (i 100) (fun b -> set b "x" (add (v "x") (v "k")));
        decl b "t2" (call "clock" []);
        ret b (band (lt (v "t1") (v "t2")) (gt (v "x") (i 0))))
  in
  let p = Process.load c.Link.cp_arm in
  match Process.run_to_completion p ~fuel:1_000_000 with
  | Process.Exited_run 1L -> ()
  | _ -> Alcotest.fail "clock not monotonic"

let suites =
  [ ( "machine-memory",
      [ Alcotest.test_case "cross-page access" `Quick test_memory_cross_page;
        Alcotest.test_case "segfault" `Quick test_memory_segfault;
        Alcotest.test_case "fault handler" `Quick test_memory_fault_handler;
        Alcotest.test_case "copy independence" `Quick test_memory_copy_independent ] );
    ( "machine-process",
      [ Alcotest.test_case "deterministic execution" `Quick test_deterministic_execution;
        Alcotest.test_case "division by zero" `Quick test_division_by_zero_crashes;
        Alcotest.test_case "wild pointer" `Quick test_wild_pointer_crashes;
        Alcotest.test_case "sbrk growth" `Quick test_sbrk_growth;
        Alcotest.test_case "stack demand growth" `Quick test_stack_demand_growth;
        Alcotest.test_case "spawn limit" `Quick test_spawn_limit;
        Alcotest.test_case "join unknown tid" `Quick test_join_unknown_tid;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic ] ) ]
