open Dapper_isa

let check = Alcotest.check

let sample_instrs arch : Minstr.t list =
  let r = if arch = Arch.X86_64 then 12 else 20 in
  [ Minstr.Nop;
    Mov (0, r);
    Movi (1, 42L);
    Movi (2, 0x1_0000_0000L);
    Movi (3, -1L);
    Binop (Add, 1, 2, 3);
    Binop (Fmul, 0, 1, 2);
    Binopi (Sub, 4, 5, -96L);
    Unop (Neg, 1, 2);
    Unop (Fsqrt, 1, 2);
    Load (1, 2, -128);
    Store (3, 4, 4088);
    Tls_get 5;
    Call 0x400123L;
    Call_reg 3;
    Ret;
    Jmp 0x400400L;
    Jz (2, 0x400500L);
    Jnz (3, 0x400600L);
    Adjust_sp (-64);
    Trap;
    Syscall (Arch.syscall_number arch `Write) ]

let arm_only : Minstr.t list =
  [ Load_pair (1, 2, 29, -32); Store_pair (3, 4, 29, -16) ]

let roundtrip arch instrs () =
  List.iter
    (fun i ->
      let bytes = Encoding.encode_all arch [ i ] in
      check Alcotest.int
        (Printf.sprintf "size of %s" (Minstr.to_string arch i))
        (String.length bytes) (Encoding.size arch i);
      match Encoding.decode_all arch bytes with
      | [ (0, i') ] ->
        check Alcotest.bool (Minstr.to_string arch i) true (i' = i)
      | [ (0, i1); (_, i2) ] ->
        (* arm movi with a 64-bit immediate splits into movz+movk *)
        (match (i, i1, i2) with
         | Minstr.Movi (d, v), Minstr.Movi (d1, lo), Minstr.Movk (d2, hi) ->
           check Alcotest.bool "movz/movk split" true
             (d = d1 && d = d2
              && Int64.equal v
                   (Int64.logor lo (Int64.shift_left hi 32)))
         | _ -> Alcotest.fail "unexpected two-instruction decode")
      | _ -> Alcotest.fail "unexpected decode shape")
    instrs

let test_x86_distinct_sizes () =
  (* Variable-length encoding: ret is a single byte (the classic gadget
     terminator); instructions range from 1 to 12 bytes. *)
  check Alcotest.int "ret size" 1 (Encoding.size Arch.X86_64 Minstr.Ret);
  check Alcotest.int "binopi size" 12 (Encoding.size Arch.X86_64 (Minstr.Binopi (Add, 0, 0, 0L)))

let test_arm_fixed_size () =
  List.iter
    (fun i ->
      let sz = Encoding.size Arch.Aarch64 i in
      check Alcotest.bool "multiple of 8" true (sz mod 8 = 0))
    (sample_instrs Arch.Aarch64 @ arm_only)

let test_cross_arch_rejects () =
  let b = Dapper_util.Bytebuf.create 8 in
  check Alcotest.bool "pair on x86 rejected" true
    (match Encoding.encode Arch.X86_64 b (Minstr.Load_pair (1, 2, 6, 0)) with
     | exception Encoding.Encode_error _ -> true
     | () -> false)

let test_trap_bytes () =
  check Alcotest.string "x86 int3" "\xCC" (Encoding.trap_bytes Arch.X86_64);
  check Alcotest.int "arm trap size" 8 (String.length (Encoding.trap_bytes Arch.Aarch64))

let test_misaligned_arm_decode () =
  let bytes = Encoding.encode_all Arch.Aarch64 [ Minstr.Ret; Minstr.Nop ] in
  check Alcotest.bool "misaligned decode rejected" true
    (Encoding.decode Arch.Aarch64 bytes 3 = None)

let test_arch_tables () =
  List.iter
    (fun arch ->
      check Alcotest.bool "sp in range" true (Arch.sp arch < Arch.gpr_count arch);
      check Alcotest.bool "args distinct from scratch" true
        (List.for_all (fun a -> not (List.mem a (Arch.scratch arch))) (Arch.arg_regs arch));
      check Alcotest.bool "callee-saved distinct from scratch" true
        (List.for_all
           (fun a -> not (List.mem a (Arch.scratch arch)))
           (Arch.callee_saved arch));
      check Alcotest.bool "fp not callee-saved pool" true
        (not (List.mem (Arch.fp arch) (Arch.callee_saved arch))))
    Arch.all;
  check Alcotest.int "x86 callee-saved count" 5 (List.length (Arch.callee_saved Arch.X86_64));
  check Alcotest.int "arm callee-saved count" 10 (List.length (Arch.callee_saved Arch.Aarch64))

let test_syscall_numbering_differs () =
  let x = Arch.syscall_number Arch.X86_64 `Write in
  let a = Arch.syscall_number Arch.Aarch64 `Write in
  check Alcotest.bool "numbers differ" true (x <> a);
  check Alcotest.bool "roundtrip" true
    (Arch.syscall_of_number Arch.X86_64 x = Some `Write
     && Arch.syscall_of_number Arch.Aarch64 a = Some `Write)

(* Property: decoding any x86 byte string never reads out of bounds and
   either fails or reports a correct size. *)
let qcheck_x86_decode_safe =
  QCheck.Test.make ~name:"x86 decode safe on random bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 32))
    (fun s ->
      let rec scan off =
        if off >= String.length s then true
        else
          match Encoding.decode Arch.X86_64 s off with
          | Some (_, sz) -> sz > 0 && off + sz <= String.length s && scan (off + sz)
          | None -> scan (off + 1)
      in
      scan 0)

let qcheck_movi_roundtrip arch =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s movi roundtrip" (Arch.name arch))
    ~count:300 QCheck.int64
    (fun v ->
      let bytes = Encoding.encode_all arch [ Minstr.Movi (1, v) ] in
      match Encoding.decode_all arch bytes with
      | [ (_, Minstr.Movi (1, v')) ] -> Int64.equal v v'
      | [ (_, Minstr.Movi (1, lo)); (_, Minstr.Movk (1, hi)) ] ->
        Int64.equal v (Int64.logor lo (Int64.shift_left hi 32))
      | _ -> false)

let suites =
  [ ( "isa",
      [ Alcotest.test_case "x86 roundtrip" `Quick (roundtrip Arch.X86_64 (sample_instrs Arch.X86_64));
        Alcotest.test_case "arm roundtrip" `Quick
          (roundtrip Arch.Aarch64 (sample_instrs Arch.Aarch64 @ arm_only));
        Alcotest.test_case "x86 sizes" `Quick test_x86_distinct_sizes;
        Alcotest.test_case "arm fixed size" `Quick test_arm_fixed_size;
        Alcotest.test_case "cross-arch rejects" `Quick test_cross_arch_rejects;
        Alcotest.test_case "trap bytes" `Quick test_trap_bytes;
        Alcotest.test_case "misaligned arm decode" `Quick test_misaligned_arm_decode;
        Alcotest.test_case "arch tables" `Quick test_arch_tables;
        Alcotest.test_case "syscall numbering" `Quick test_syscall_numbering_differs;
        QCheck_alcotest.to_alcotest qcheck_x86_decode_safe;
        QCheck_alcotest.to_alcotest (qcheck_movi_roundtrip Arch.X86_64);
        QCheck_alcotest.to_alcotest (qcheck_movi_roundtrip Arch.Aarch64) ] ) ]
