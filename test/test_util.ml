open Dapper_util

let check = Alcotest.check

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("a", Json.Int 42L);
        ("b", Json.List [ Json.String "x\"y\n"; Json.Bool true; Json.Null ]);
        ("c", Json.Obj [ ("nested", Json.Float 1.5) ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []) ]
  in
  let round = Json.of_string (Json.to_string doc) in
  check Alcotest.bool "roundtrip" true (round = doc)

let test_json_parse_basics () =
  check Alcotest.bool "int" true (Json.of_string "42" = Json.Int 42L);
  check Alcotest.bool "neg" true (Json.of_string "-7" = Json.Int (-7L));
  check Alcotest.bool "float" true (Json.of_string "2.5" = Json.Float 2.5);
  check Alcotest.bool "string esc" true (Json.of_string {|"a\tb"|} = Json.String "a\tb");
  check Alcotest.bool "unicode" true (Json.of_string {|"A"|} = Json.String "A")

let test_json_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "trailing" true (fails "1 2");
  check Alcotest.bool "unterminated" true (fails "\"abc");
  check Alcotest.bool "bad obj" true (fails "{\"a\" 1}")

let test_json_members () =
  let doc = Json.of_string {|{"x": 1, "y": [2, 3]}|} in
  check Alcotest.int "member x" 1 (Int64.to_int (Json.to_int (Json.member "x" doc)));
  check Alcotest.int "list len" 2 (List.length (Json.to_list (Json.member "y" doc)));
  check Alcotest.bool "missing" true (Json.member_opt "z" doc = None)

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  let xs = List.init 32 (fun _ -> Rng.next a) in
  let ys = List.init 32 (fun _ -> Rng.next b) in
  check Alcotest.bool "same stream" true (xs = ys)

let test_rng_bounds () =
  let r = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17);
    let f = Rng.float r in
    check Alcotest.bool "float range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_permutation () =
  let r = Rng.create 99L in
  let p = Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.bool "is permutation" true (sorted = Array.init 50 (fun i -> i))

let test_bytebuf_roundtrip () =
  let b = Bytebuf.create 16 in
  Bytebuf.add_u8 b 0xAB;
  Bytebuf.add_u16 b 0x1234;
  Bytebuf.add_u32 b 0xDEADBEEF;
  Bytebuf.add_i64 b (-42L);
  let s = Bytebuf.contents b in
  check Alcotest.int "u8" 0xAB (Bytebuf.get_u8 s 0);
  check Alcotest.int "u16" 0x1234 (Bytebuf.get_u16 s 1);
  check Alcotest.int "u32" 0xDEADBEEF (Bytebuf.get_u32 s 3);
  check Alcotest.bool "i64" true (Int64.equal (-42L) (Bytebuf.get_i64 s 7))

let test_fnv64 () =
  (* empty string digests to the FNV-1a offset basis *)
  check Alcotest.bool "empty = offset basis" true
    (Int64.equal (Bytebuf.fnv64 "") 0xcbf29ce484222325L);
  check Alcotest.bool "different data, different digest" true
    (not (Int64.equal (Bytebuf.fnv64 "abc") (Bytebuf.fnv64 "abd")));
  (* folding is composition: hashing "ab" then "cd" = hashing "abcd" *)
  check Alcotest.bool "fold composes" true
    (Int64.equal
       (Bytebuf.fnv64_fold (Bytebuf.fnv64 "ab") "cd")
       (Bytebuf.fnv64 "abcd"))

(* ----- unified error classification -----

   [Dapper_error.examples] carries one value per constructor and
   [retriable] is an exhaustive match, so this test plus the compiler
   pins the transient/structural classification of every error: adding
   a constructor breaks the library match AND this expectation. *)

let test_error_classification () =
  let expect : Dapper_error.t -> bool = function
    (* transient: worth retrying *)
    | Dapper_error.Pause_budget_exhausted
    | Dapper_error.Active_function _
    | Dapper_error.Transfer_timeout _
    | Dapper_error.Checksum_mismatch _
    | Dapper_error.Node_lost _
    | Dapper_error.Deadline_exceeded _ -> true
    (* structural: retrying cannot help *)
    | Dapper_error.Not_at_equivalence_point _
    | Dapper_error.Process_exited
    | Dapper_error.Dump_failed _
    | Dapper_error.Unwind_failed _
    | Dapper_error.Recode_failed _
    | Dapper_error.Shuffle_failed _
    | Dapper_error.Layout_incompatible _
    | Dapper_error.Transfer_failed _
    | Dapper_error.Restore_failed _
    | Dapper_error.Source_lost _
    | Dapper_error.Commit_failed _
    | Dapper_error.Verify_failed _ -> false
  in
  check Alcotest.int "one example per constructor" 18
    (List.length Dapper_error.examples);
  List.iter
    (fun e ->
      check Alcotest.bool (Dapper_error.to_string e) (expect e)
        (Dapper_error.retriable e))
    Dapper_error.examples

let test_error_stages () =
  let stage e = Dapper_error.stage_name (Dapper_error.stage_of e) in
  check Alcotest.string "timeout is a transfer error" "transfer"
    (stage (Dapper_error.Transfer_timeout "x"));
  check Alcotest.string "checksum mismatch is a transfer error" "transfer"
    (stage (Dapper_error.Checksum_mismatch "x"));
  check Alcotest.string "node loss strikes at restore" "restore"
    (stage (Dapper_error.Node_lost "x"));
  check Alcotest.string "source loss strikes at commit" "commit"
    (stage (Dapper_error.Source_lost "x"));
  check Alcotest.string "commit failure" "commit"
    (stage (Dapper_error.Commit_failed "x"));
  (* every example renders and classifies without raising *)
  List.iter
    (fun e ->
      check Alcotest.bool "non-empty rendering" true
        (String.length (Dapper_error.to_string e) > 0);
      ignore (Dapper_error.stage_of e))
    Dapper_error.examples

(* ----- the chaos plane ----- *)

let payload_sites = [ Fault.Transfer_chunk; Fault.Page_fetch ]
let node_sites = [ Fault.Source_node; Fault.Dest_restore; Fault.Dest_node ]

let test_fault_determinism () =
  let draw_all f =
    List.init 64 (fun i ->
        Fault.draw f (List.nth (payload_sites @ node_sites) (i mod 5)))
  in
  let a = Fault.make ~seed:42 (Fault.uniform 0.5) in
  let b = Fault.make ~seed:42 (Fault.uniform 0.5) in
  check Alcotest.bool "same seed, same schedule" true (draw_all a = draw_all b);
  check Alcotest.bool "same seed, same log" true (Fault.log a = Fault.log b);
  let c = Fault.make ~seed:43 (Fault.uniform 0.5) in
  check Alcotest.bool "different seed, different schedule" true
    (draw_all a <> draw_all c)

let test_fault_calm_and_certain () =
  let calm = Fault.make ~seed:1 Fault.calm in
  List.iter
    (fun site ->
      for _ = 1 to 50 do
        check Alcotest.bool "calm never fires" true (Fault.draw calm site = None)
      done)
    (payload_sites @ node_sites);
  check Alcotest.int "calm injects nothing" 0 (Fault.injected calm);
  let certain =
    Fault.make ~seed:1
      { Fault.calm with Fault.fs_drop = 1.0; fs_crash_source = 1.0 }
  in
  check Alcotest.bool "certain drop" true
    (Fault.draw certain Fault.Transfer_chunk = Some Fault.Drop);
  check Alcotest.bool "certain crash" true
    (Fault.draw certain Fault.Source_node = Some Fault.Crash);
  check Alcotest.int "both injections logged" 2 (Fault.injected certain);
  check Alcotest.bool "uniform validates probability" true
    (match Fault.uniform 1.5 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_fault_corrupt_byte () =
  let data = Bytes.of_string (String.make 64 '\x00') in
  Fault.corrupt_byte 17L data;
  let flipped =
    List.length
      (List.filter (fun i -> Bytes.get data i <> '\x00')
         (List.init (Bytes.length data) Fun.id))
  in
  check Alcotest.int "exactly one byte flipped" 1 flipped;
  (* deterministic in the salt, and a no-op on empty payloads *)
  let again = Bytes.of_string (String.make 64 '\x00') in
  Fault.corrupt_byte 17L again;
  check Alcotest.bool "salt-deterministic" true (Bytes.equal data again);
  Fault.corrupt_byte 17L Bytes.empty

(* ----- Event_heap: the discrete-event core ----- *)

let test_event_heap_basics () =
  let h = Event_heap.create () in
  check Alcotest.bool "empty" true (Event_heap.is_empty h);
  check Alcotest.bool "pop empty" true (Event_heap.pop h = None);
  check Alcotest.bool "peek empty" true (Event_heap.peek h = None);
  Event_heap.push h ~time:2.0 "b";
  Event_heap.push h ~time:1.0 "a";
  Event_heap.push h ~time:3.0 "c";
  check Alcotest.int "length" 3 (Event_heap.length h);
  check Alcotest.bool "peek min" true (Event_heap.peek h = Some (1.0, "a"));
  check Alcotest.bool "peek_time" true (Event_heap.peek_time h = Some 1.0);
  check Alcotest.bool "drain sorted" true
    (Event_heap.drain h = [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]);
  check Alcotest.int "lifetime pushes survive drain" 3 (Event_heap.pushed h);
  check Alcotest.bool "nan rejected" true
    (match Event_heap.push h ~time:Float.nan "x" with
     | exception Invalid_argument _ -> true
     | () -> false)

let test_event_heap_tie_break () =
  let h = Event_heap.create () in
  Event_heap.push h ~key:2 ~time:1.0 "k2-first";
  Event_heap.push h ~key:1 ~time:1.0 "k1";
  Event_heap.push h ~key:2 ~time:1.0 "k2-second";
  Event_heap.push h ~key:0 ~time:0.5 "early";
  check Alcotest.bool "key then push order on ties" true
    (List.map snd (Event_heap.drain h)
    = [ "early"; "k1"; "k2-first"; "k2-second" ])

(* Entries as (time, key) over a deliberately collision-heavy domain, so
   the tie-break paths get exercised; the payload is the push index. *)
let eh_entries = QCheck.(list (pair (int_bound 20) (int_bound 3)))

let eh_model entries =
  List.mapi (fun i (t, k) -> (float_of_int t, k, i)) entries
  |> List.stable_sort (fun (t1, k1, s1) (t2, k2, s2) ->
         compare (t1, k1, s1) (t2, k2, s2))
  |> List.map (fun (t, _, i) -> (t, i))

let eh_fill entries =
  let h = Event_heap.create () in
  List.iteri
    (fun i (t, k) -> Event_heap.push h ~key:k ~time:(float_of_int t) i)
    entries;
  h

let qcheck_event_heap_model =
  QCheck.Test.make ~name:"event_heap pops monotone and stable (list-sort model)"
    ~count:500 eh_entries (fun entries ->
      Event_heap.drain (eh_fill entries) = eh_model entries)

let qcheck_event_heap_interleaved =
  (* [Some entry] pushes, [None] pops: every pop must return the
     minimum of what a sorted-list model currently holds. *)
  QCheck.Test.make ~name:"event_heap interleaved push/pop roundtrip" ~count:500
    QCheck.(list (option (pair (int_bound 20) (int_bound 3))))
    (fun ops ->
      let h = Event_heap.create () in
      let model = ref [] and seq = ref 0 and ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some (t, k) ->
            Event_heap.push h ~key:k ~time:(float_of_int t) !seq;
            model :=
              List.stable_sort compare ((float_of_int t, k, !seq) :: !model);
            incr seq
          | None -> (
            match (Event_heap.pop h, !model) with
            | None, [] -> ()
            | Some (t, v), (mt, _, mv) :: rest when t = mt && v = mv ->
              model := rest
            | _ -> ok := false))
        ops;
      !ok && Event_heap.length h = List.length !model)

let qcheck_event_heap_merge =
  (* Pushing stream A then stream B drains like merging their
     individually sorted runs, A winning ties — push order is the
     final tie-break. *)
  QCheck.Test.make ~name:"event_heap merge equals merged list-sorts" ~count:500
    (QCheck.pair eh_entries eh_entries) (fun (a, b) ->
      let h = eh_fill (a @ b) in
      let tag off entries =
        List.mapi (fun i (t, k) -> (float_of_int t, k, off + i)) entries
        |> List.stable_sort compare
      in
      let merged =
        List.merge compare (tag 0 a) (tag (List.length a) b)
        |> List.map (fun (t, _, i) -> (t, i))
      in
      Event_heap.drain h = merged)

let qcheck_json_int_roundtrip =
  QCheck.Test.make ~name:"json int64 roundtrip" ~count:200 QCheck.int64 (fun v ->
      Json.of_string (Json.to_string (Json.Int v)) = Json.Int v)

let qcheck_json_string_roundtrip =
  QCheck.Test.make ~name:"json string roundtrip" ~count:200 QCheck.printable_string
    (fun s -> Json.of_string (Json.to_string (Json.String s)) = Json.String s)

let suites =
  [ ( "util",
      [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parse basics" `Quick test_json_parse_basics;
        Alcotest.test_case "json errors" `Quick test_json_errors;
        Alcotest.test_case "json members" `Quick test_json_members;
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng permutation" `Quick test_rng_permutation;
        Alcotest.test_case "bytebuf roundtrip" `Quick test_bytebuf_roundtrip;
        Alcotest.test_case "fnv64 digests" `Quick test_fnv64;
        Alcotest.test_case "error classification exhaustive" `Quick
          test_error_classification;
        Alcotest.test_case "error stages" `Quick test_error_stages;
        Alcotest.test_case "fault schedule determinism" `Quick test_fault_determinism;
        Alcotest.test_case "fault calm/certain specs" `Quick test_fault_calm_and_certain;
        Alcotest.test_case "fault corrupt_byte" `Quick test_fault_corrupt_byte;
        Alcotest.test_case "event heap basics" `Quick test_event_heap_basics;
        Alcotest.test_case "event heap tie-break" `Quick test_event_heap_tie_break;
        QCheck_alcotest.to_alcotest qcheck_event_heap_model;
        QCheck_alcotest.to_alcotest qcheck_event_heap_interleaved;
        QCheck_alcotest.to_alcotest qcheck_event_heap_merge;
        QCheck_alcotest.to_alcotest qcheck_json_int_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_json_string_roundtrip ] ) ]
