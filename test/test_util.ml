open Dapper_util

let check = Alcotest.check

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("a", Json.Int 42L);
        ("b", Json.List [ Json.String "x\"y\n"; Json.Bool true; Json.Null ]);
        ("c", Json.Obj [ ("nested", Json.Float 1.5) ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []) ]
  in
  let round = Json.of_string (Json.to_string doc) in
  check Alcotest.bool "roundtrip" true (round = doc)

let test_json_parse_basics () =
  check Alcotest.bool "int" true (Json.of_string "42" = Json.Int 42L);
  check Alcotest.bool "neg" true (Json.of_string "-7" = Json.Int (-7L));
  check Alcotest.bool "float" true (Json.of_string "2.5" = Json.Float 2.5);
  check Alcotest.bool "string esc" true (Json.of_string {|"a\tb"|} = Json.String "a\tb");
  check Alcotest.bool "unicode" true (Json.of_string {|"A"|} = Json.String "A")

let test_json_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "trailing" true (fails "1 2");
  check Alcotest.bool "unterminated" true (fails "\"abc");
  check Alcotest.bool "bad obj" true (fails "{\"a\" 1}")

let test_json_members () =
  let doc = Json.of_string {|{"x": 1, "y": [2, 3]}|} in
  check Alcotest.int "member x" 1 (Int64.to_int (Json.to_int (Json.member "x" doc)));
  check Alcotest.int "list len" 2 (List.length (Json.to_list (Json.member "y" doc)));
  check Alcotest.bool "missing" true (Json.member_opt "z" doc = None)

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  let xs = List.init 32 (fun _ -> Rng.next a) in
  let ys = List.init 32 (fun _ -> Rng.next b) in
  check Alcotest.bool "same stream" true (xs = ys)

let test_rng_bounds () =
  let r = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17);
    let f = Rng.float r in
    check Alcotest.bool "float range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_permutation () =
  let r = Rng.create 99L in
  let p = Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.bool "is permutation" true (sorted = Array.init 50 (fun i -> i))

let test_bytebuf_roundtrip () =
  let b = Bytebuf.create 16 in
  Bytebuf.add_u8 b 0xAB;
  Bytebuf.add_u16 b 0x1234;
  Bytebuf.add_u32 b 0xDEADBEEF;
  Bytebuf.add_i64 b (-42L);
  let s = Bytebuf.contents b in
  check Alcotest.int "u8" 0xAB (Bytebuf.get_u8 s 0);
  check Alcotest.int "u16" 0x1234 (Bytebuf.get_u16 s 1);
  check Alcotest.int "u32" 0xDEADBEEF (Bytebuf.get_u32 s 3);
  check Alcotest.bool "i64" true (Int64.equal (-42L) (Bytebuf.get_i64 s 7))

let qcheck_json_int_roundtrip =
  QCheck.Test.make ~name:"json int64 roundtrip" ~count:200 QCheck.int64 (fun v ->
      Json.of_string (Json.to_string (Json.Int v)) = Json.Int v)

let qcheck_json_string_roundtrip =
  QCheck.Test.make ~name:"json string roundtrip" ~count:200 QCheck.printable_string
    (fun s -> Json.of_string (Json.to_string (Json.String s)) = Json.String s)

let suites =
  [ ( "util",
      [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parse basics" `Quick test_json_parse_basics;
        Alcotest.test_case "json errors" `Quick test_json_errors;
        Alcotest.test_case "json members" `Quick test_json_members;
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng permutation" `Quick test_rng_permutation;
        Alcotest.test_case "bytebuf roundtrip" `Quick test_bytebuf_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_json_int_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_json_string_roundtrip ] ) ]
