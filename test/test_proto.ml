open Dapper_proto
open Dapper_util

let check = Alcotest.check

let test_varint_boundaries () =
  List.iter
    (fun v ->
      let b = Bytebuf.create 16 in
      Proto.encode_varint b v;
      let v', n = Proto.decode_varint (Bytebuf.contents b) 0 in
      check Alcotest.bool (Printf.sprintf "varint %Ld" v) true
        (Int64.equal v v' && n = Bytebuf.length b))
    [ 0L; 1L; 127L; 128L; 300L; 16383L; 16384L; Int64.max_int; -1L; Int64.min_int ]

let test_varint_sizes () =
  let size v =
    let b = Bytebuf.create 16 in
    Proto.encode_varint b v;
    Bytebuf.length b
  in
  check Alcotest.int "0 is 1 byte" 1 (size 0L);
  check Alcotest.int "127 is 1 byte" 1 (size 127L);
  check Alcotest.int "128 is 2 bytes" 2 (size 128L);
  check Alcotest.int "-1 is 10 bytes" 10 (size (-1L))

let test_truncated_varint () =
  check Alcotest.bool "truncated" true
    (match Proto.decode_varint "\x80\x80" 0 with
     | exception Proto.Decode_error _ -> true
     | _ -> false)

let test_message_roundtrip () =
  let fields =
    [ Proto.v_int 1 42L; Proto.v_fix 2 0xDEADBEEFL; Proto.v_str 3 "hello";
      Proto.v_msg 4 [ Proto.v_int 1 7L ]; Proto.v_int 5 (-1L) ]
  in
  let decoded = Proto.decode (Proto.encode fields) in
  check Alcotest.bool "int" true (Proto.get_int decoded 1 = 42L);
  check Alcotest.bool "fix" true (Proto.get_fix decoded 2 = 0xDEADBEEFL);
  check Alcotest.string "str" "hello" (Proto.get_str decoded 3);
  check Alcotest.bool "nested" true (Proto.get_int (Proto.get_msg decoded 4) 1 = 7L);
  check Alcotest.bool "negative varint" true (Proto.get_int decoded 5 = -1L)

let test_repeated_fields () =
  let fields = [ Proto.v_int 7 1L; Proto.v_int 7 2L; Proto.v_int 7 3L ] in
  let decoded = Proto.decode (Proto.encode fields) in
  check Alcotest.bool "all ints" true (Proto.get_all_ints decoded 7 = [ 1L; 2L; 3L ]);
  check Alcotest.bool "missing optional" true (Proto.get_int_opt decoded 9 = None)

let test_wrong_wire_type () =
  let decoded = Proto.decode (Proto.encode [ Proto.v_str 1 "x" ]) in
  check Alcotest.bool "raises" true
    (match Proto.get_int decoded 1 with
     | exception Proto.Decode_error _ -> true
     | _ -> false)

let test_truncated_message () =
  let bytes = Proto.encode [ Proto.v_str 1 "hello world" ] in
  let cut = String.sub bytes 0 (String.length bytes - 3) in
  check Alcotest.bool "raises" true
    (match Proto.decode cut with
     | exception Proto.Decode_error _ -> true
     | _ -> false)

let test_zigzag_boundaries () =
  (* The whole point of zigzag: small-magnitude signed values map to
     small unsigned varints. *)
  List.iter
    (fun (v, z) ->
      check Alcotest.bool (Printf.sprintf "zigzag %Ld -> %Ld" v z) true
        (Int64.equal (Proto.zigzag v) z && Int64.equal (Proto.unzigzag z) v))
    [ (0L, 0L); (-1L, 1L); (1L, 2L); (-2L, 3L); (2L, 4L);
      (Int64.max_int, -2L); (Int64.min_int, -1L) ];
  let size v =
    let b = Bytebuf.create 16 in
    Proto.encode_zigzag b v;
    Bytebuf.length b
  in
  check Alcotest.int "-1 zigzags to 1 byte" 1 (size (-1L));
  check Alcotest.int "-64 zigzags to 1 byte" 1 (size (-64L));
  check Alcotest.int "-65 zigzags to 2 bytes" 2 (size (-65L));
  check Alcotest.int "min_int zigzags to 10 bytes" 10 (size Int64.min_int)

(* Int64 generator weighted toward the boundaries where the 7-bit
   groups and the sign bit interact. *)
let gen_boundary_int64 =
  QCheck.Gen.(
    oneof
      [ oneofl
          [ 0L; 1L; -1L; 127L; 128L; -128L; 16383L; 16384L; Int64.max_int;
            Int64.min_int; Int64.add Int64.min_int 1L; Int64.sub Int64.max_int 1L ];
        (* values straddling each varint length boundary 2^(7k) +/- 1 *)
        ( pair (int_range 1 9) (int_range (-1) 1) >>= fun (k, d) ->
          oneofl [ 1L; -1L ] >>= fun sign ->
          return (Int64.mul sign (Int64.add (Int64.shift_left 1L (7 * k)) (Int64.of_int d))) );
        map Int64.of_int small_signed_int;
        int64 ])

let arb_boundary_int64 = QCheck.make ~print:Int64.to_string gen_boundary_int64

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip at Int64 boundaries" ~count:500
    arb_boundary_int64
    (fun v ->
      let b = Bytebuf.create 16 in
      Proto.encode_varint b v;
      let s = Bytebuf.contents b in
      let v', n = Proto.decode_varint s 0 in
      Int64.equal v v' && n = String.length s)

let qcheck_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag varint roundtrip at Int64 boundaries" ~count:500
    arb_boundary_int64
    (fun v ->
      Int64.equal (Proto.unzigzag (Proto.zigzag v)) v
      && begin
        let b = Bytebuf.create 16 in
        Proto.encode_zigzag b v;
        let s = Bytebuf.contents b in
        let v', n = Proto.decode_zigzag s 0 in
        Int64.equal v v' && n = String.length s
      end)

let qcheck_field_roundtrip =
  QCheck.Test.make ~name:"proto field list roundtrip" ~count:300
    QCheck.(
      small_list
        (pair (int_range 1 200)
           (oneof
              [ map (fun v -> `I v) int64;
                map (fun v -> `F v) int64;
                map (fun s -> `S s) (string_of_size (QCheck.Gen.int_range 0 40)) ])))
    (fun spec ->
      let fields =
        List.map
          (fun (tag, payload) ->
            match payload with
            | `I v -> Proto.v_int tag v
            | `F v -> Proto.v_fix tag v
            | `S s -> Proto.v_str tag s)
          spec
      in
      Proto.decode (Proto.encode fields) = fields)

let suites =
  [ ( "proto",
      [ Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
        Alcotest.test_case "varint sizes" `Quick test_varint_sizes;
        Alcotest.test_case "truncated varint" `Quick test_truncated_varint;
        Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
        Alcotest.test_case "repeated fields" `Quick test_repeated_fields;
        Alcotest.test_case "wrong wire type" `Quick test_wrong_wire_type;
        Alcotest.test_case "truncated message" `Quick test_truncated_message;
        Alcotest.test_case "zigzag boundaries" `Quick test_zigzag_boundaries;
        QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_zigzag_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_field_roundtrip ] ) ]
