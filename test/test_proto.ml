open Dapper_proto
open Dapper_util

let check = Alcotest.check

let test_varint_boundaries () =
  List.iter
    (fun v ->
      let b = Bytebuf.create 16 in
      Proto.encode_varint b v;
      let v', n = Proto.decode_varint (Bytebuf.contents b) 0 in
      check Alcotest.bool (Printf.sprintf "varint %Ld" v) true
        (Int64.equal v v' && n = Bytebuf.length b))
    [ 0L; 1L; 127L; 128L; 300L; 16383L; 16384L; Int64.max_int; -1L; Int64.min_int ]

let test_varint_sizes () =
  let size v =
    let b = Bytebuf.create 16 in
    Proto.encode_varint b v;
    Bytebuf.length b
  in
  check Alcotest.int "0 is 1 byte" 1 (size 0L);
  check Alcotest.int "127 is 1 byte" 1 (size 127L);
  check Alcotest.int "128 is 2 bytes" 2 (size 128L);
  check Alcotest.int "-1 is 10 bytes" 10 (size (-1L))

let test_truncated_varint () =
  check Alcotest.bool "truncated" true
    (match Proto.decode_varint "\x80\x80" 0 with
     | exception Proto.Decode_error _ -> true
     | _ -> false)

let test_message_roundtrip () =
  let fields =
    [ Proto.v_int 1 42L; Proto.v_fix 2 0xDEADBEEFL; Proto.v_str 3 "hello";
      Proto.v_msg 4 [ Proto.v_int 1 7L ]; Proto.v_int 5 (-1L) ]
  in
  let decoded = Proto.decode (Proto.encode fields) in
  check Alcotest.bool "int" true (Proto.get_int decoded 1 = 42L);
  check Alcotest.bool "fix" true (Proto.get_fix decoded 2 = 0xDEADBEEFL);
  check Alcotest.string "str" "hello" (Proto.get_str decoded 3);
  check Alcotest.bool "nested" true (Proto.get_int (Proto.get_msg decoded 4) 1 = 7L);
  check Alcotest.bool "negative varint" true (Proto.get_int decoded 5 = -1L)

let test_repeated_fields () =
  let fields = [ Proto.v_int 7 1L; Proto.v_int 7 2L; Proto.v_int 7 3L ] in
  let decoded = Proto.decode (Proto.encode fields) in
  check Alcotest.bool "all ints" true (Proto.get_all_ints decoded 7 = [ 1L; 2L; 3L ]);
  check Alcotest.bool "missing optional" true (Proto.get_int_opt decoded 9 = None)

let test_wrong_wire_type () =
  let decoded = Proto.decode (Proto.encode [ Proto.v_str 1 "x" ]) in
  check Alcotest.bool "raises" true
    (match Proto.get_int decoded 1 with
     | exception Proto.Decode_error _ -> true
     | _ -> false)

let test_truncated_message () =
  let bytes = Proto.encode [ Proto.v_str 1 "hello world" ] in
  let cut = String.sub bytes 0 (String.length bytes - 3) in
  check Alcotest.bool "raises" true
    (match Proto.decode cut with
     | exception Proto.Decode_error _ -> true
     | _ -> false)

let qcheck_field_roundtrip =
  QCheck.Test.make ~name:"proto field list roundtrip" ~count:300
    QCheck.(
      small_list
        (pair (int_range 1 200)
           (oneof
              [ map (fun v -> `I v) int64;
                map (fun v -> `F v) int64;
                map (fun s -> `S s) (string_of_size (QCheck.Gen.int_range 0 40)) ])))
    (fun spec ->
      let fields =
        List.map
          (fun (tag, payload) ->
            match payload with
            | `I v -> Proto.v_int tag v
            | `F v -> Proto.v_fix tag v
            | `S s -> Proto.v_str tag s)
          spec
      in
      Proto.decode (Proto.encode fields) = fields)

let suites =
  [ ( "proto",
      [ Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
        Alcotest.test_case "varint sizes" `Quick test_varint_sizes;
        Alcotest.test_case "truncated varint" `Quick test_truncated_varint;
        Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
        Alcotest.test_case "repeated fields" `Quick test_repeated_fields;
        Alcotest.test_case "wrong wire type" `Quick test_wrong_wire_type;
        Alcotest.test_case "truncated message" `Quick test_truncated_message;
        QCheck_alcotest.to_alcotest qcheck_field_roundtrip ] ) ]
