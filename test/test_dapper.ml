open Dapper_isa
open Dapper_clite
open Dapper_machine
open Dapper_net
open Dapper
open Cl
module Link = Dapper_codegen.Link
module Netlink = Dapper_net.Link

let check = Alcotest.check
let ok = Dapper_util.Dapper_error.ok_exn

(* A workload with rich mixed state: stack arrays, pointers into the
   caller's frame, floats, TLS, nested calls, periodic output. *)
let compute_module ?(iters = 300) () =
  let m = create "compute" in
  Cstd.add m;
  tls_var m "tcount" 8;
  global m "gsum" 8;
  func m "helper" [ ("p", Dapper_ir.Ir.Ptr); ("n", Dapper_ir.Ir.I64) ] (fun b ->
      decl b "s" (i 0);
      for_ b "k" (i 0) (v "n") (fun b ->
          set b "s" (add (v "s") (idx (v "p") (v "k"))));
      ret b (v "s"));
  func m "work" [ ("it", Dapper_ir.Ir.I64) ] (fun b ->
      decl_arr b "arr" 32;
      for_ b "k" (i 0) (i 32) (fun b ->
          store_idx b (addr "arr") (v "k") (mul (v "it") (v "k")));
      decl b "h" (call "helper" [ addr "arr"; i 32 ]);
      declf b "fs" (sqrt_ (i2f (add (v "h") (i 1))));
      set b "tcount" (add (v "tcount") (i 1));
      if_ b (eq (rem_ (v "it") (i 100)) (i 0)) (fun b ->
          do_ b (call "print_int" [ v "h" ]);
          do_ b (call "print_flt" [ v "fs" ]);
          do_ b (call "print_nl" []));
      ret b (add (v "h") (f2i (v "fs"))));
  func m "main" [] (fun b ->
      decl b "t" (i 0);
      for_ b "it" (i 0) (i iters) (fun b ->
          set b "t" (add (v "t") (call "work" [ v "it" ])));
      set b "gsum" (v "t");
      do_ b (call "print_int" [ v "t" ]);
      do_ b (call "print_nl" []);
      ret b (rem_ (v "t") (i 251)));
  finish m

let threaded_module () =
  let m = create "threaded" in
  Cstd.add m;
  tls_var m "acc" 8;
  global m "total" 8;
  global m "mtx" 8;
  func m "step" [ ("x", Dapper_ir.Ir.I64) ] (fun b ->
      ret b (add (mul (v "x") (i 3)) (i 1)));
  func m "worker" [ ("seed", Dapper_ir.Ir.I64) ] (fun b ->
      set b "acc" (i 0);
      for_ b "k" (i 0) (i 2000) (fun b ->
          set b "acc" (add (v "acc") (call "step" [ add (v "seed") (v "k") ])));
      do_ b (call "lock" [ addr "mtx" ]);
      set b "total" (add (v "total") (v "acc"));
      do_ b (call "unlock" [ addr "mtx" ]);
      ret b (i 0));
  func m "main" [] (fun b ->
      decl b "t1" (call "spawn" [ fnptr "worker"; i 10 ]);
      decl b "t2" (call "spawn" [ fnptr "worker"; i 20 ]);
      decl b "t3" (call "spawn" [ fnptr "worker"; i 30 ]);
      do_ b (call "join" [ v "t1" ]);
      do_ b (call "join" [ v "t2" ]);
      do_ b (call "join" [ v "t3" ]);
      do_ b (call "print_int" [ v "total" ]);
      do_ b (call "print_nl" []);
      ret b (rem_ (v "total") (i 251)));
  finish m

let node_of = function Arch.X86_64 -> Node.xeon | Arch.Aarch64 -> Node.rpi

let native_run compiled arch ~fuel =
  let p = Process.load (Link.binary_for compiled arch) in
  match Process.run_to_completion p ~fuel with
  | Process.Exited_run code -> (code, Process.stdout_contents p)
  | Process.Crashed c ->
    Alcotest.fail (Printf.sprintf "native crash on %s: %s" (Arch.name arch) c.cr_reason)
  | Process.Idle | Process.Progress -> Alcotest.fail "native run did not finish"

(* Run [warmup] instructions on [src], migrate to [dst], finish there;
   return (exit code, combined stdout, migration result). *)
let migrate_run ?lazy_pages compiled ~src ~dst ~warmup ~fuel =
  let src_bin = Link.binary_for compiled src in
  let dst_bin = Link.binary_for compiled dst in
  let p = Process.load src_bin in
  (match Process.run p ~max_instrs:warmup with
   | Process.Progress -> ()
   | Process.Exited_run _ -> Alcotest.fail "program finished before migration point"
   | Process.Idle -> Alcotest.fail "deadlock before migration"
   | Process.Crashed c -> Alcotest.fail ("crash before migration: " ^ c.cr_reason));
  match
    Migrate.migrate ?lazy_pages ~src_node:(node_of src) ~dst_node:(node_of dst)
      ~src_bin ~dst_bin p
  with
  | Error e -> Alcotest.fail (Migrate.error_to_string e)
  | Ok r ->
    let out_before = Process.stdout_contents p in
    (match Process.run_to_completion r.r_process ~fuel with
     | Process.Exited_run code ->
       (code, out_before ^ Process.stdout_contents r.r_process, r)
     | Process.Crashed c ->
       Alcotest.fail
         (Printf.sprintf "crash after migration on %s at pc=0x%Lx: %s" (Arch.name dst)
            c.cr_pc c.cr_reason)
     | Process.Idle -> Alcotest.fail "deadlock after migration"
     | Process.Progress -> Alcotest.fail "out of fuel after migration")

let fuel = 80_000_000

let test_cross_isa_migration src dst () =
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let code, out = native_run compiled dst ~fuel in
  let code', out', r = migrate_run compiled ~src ~dst ~warmup:120_000 ~fuel in
  check Alcotest.bool "exit codes equal" true (Int64.equal code code');
  check Alcotest.string "stdout equal" out out';
  check Alcotest.bool "some frames rewritten" true (r.r_rewrite.Rewrite.st_frames >= 2);
  check Alcotest.bool "code pages replaced" true (r.r_rewrite.Rewrite.st_code_pages >= 1)

let test_migration_points () =
  (* Migration must be transparent wherever it lands. *)
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let code, out = native_run compiled Arch.Aarch64 ~fuel in
  List.iter
    (fun warmup ->
      let code', out', _ =
        migrate_run compiled ~src:Arch.X86_64 ~dst:Arch.Aarch64 ~warmup ~fuel
      in
      check Alcotest.bool
        (Printf.sprintf "exit at warmup %d" warmup)
        true (Int64.equal code code');
      check Alcotest.string (Printf.sprintf "out at warmup %d" warmup) out out')
    [ 5_000; 37_000; 90_000; 200_000; 400_000 ]

let test_threaded_migration () =
  let m = threaded_module () in
  let compiled = Link.compile ~app:"threaded" m in
  let code, out = native_run compiled Arch.Aarch64 ~fuel in
  List.iter
    (fun warmup ->
      let code', out', r =
        migrate_run compiled ~src:Arch.X86_64 ~dst:Arch.Aarch64 ~warmup ~fuel
      in
      check Alcotest.bool
        (Printf.sprintf "threaded exit at %d" warmup)
        true (Int64.equal code code');
      check Alcotest.string (Printf.sprintf "threaded out at %d" warmup) out out';
      check Alcotest.bool "several threads rewritten" true
        (r.r_rewrite.Rewrite.st_threads >= 1))
    [ 20_000; 60_000; 150_000 ]

let test_lazy_migration () =
  let m = compute_module ~iters:60 () in
  let compiled = Link.compile ~app:"compute" m in
  let code, out = native_run compiled Arch.Aarch64 ~fuel in
  let code', out', r =
    migrate_run ~lazy_pages:true compiled ~src:Arch.X86_64 ~dst:Arch.Aarch64
      ~warmup:150_000 ~fuel
  in
  check Alcotest.bool "lazy exit equal" true (Int64.equal code code');
  check Alcotest.string "lazy stdout equal" out out';
  match r.r_page_server with
  | None -> Alcotest.fail "lazy migration should have a page server"
  | Some s -> check Alcotest.bool "pages served on demand" true (s.srv_pages > 0)

let test_restore_without_rewrite_fails () =
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let p = Process.load compiled.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:50_000);
  (match Monitor.request_pause p ~budget:10_000_000 with
   | Error e -> Alcotest.fail (Monitor.error_to_string e)
   | Ok _ -> ());
  let image = ok (Dapper_criu.Dump.dump p) in
  check Alcotest.bool "arch mismatch rejected" true
    (match Dapper_criu.Restore.restore image compiled.Link.cp_arm with
     | Error (Dapper_util.Dapper_error.Restore_failed _) -> true
     | _ -> false)

let test_pause_cancel_resume () =
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let code, out = native_run compiled Arch.X86_64 ~fuel in
  let p = Process.load compiled.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:80_000);
  (match Monitor.request_pause p ~budget:10_000_000 with
   | Error e -> Alcotest.fail (Monitor.error_to_string e)
   | Ok stats ->
     check Alcotest.bool "some thread trapped" true (stats.ps_trapped >= 1));
  check Alcotest.bool "quiescent" true (Process.all_quiescent p);
  Monitor.resume p;
  (match Process.run_to_completion p ~fuel with
   | Process.Exited_run code' ->
     check Alcotest.bool "exit equal after resume" true (Int64.equal code code');
     check Alcotest.string "out equal after resume" out (Process.stdout_contents p)
   | _ -> Alcotest.fail "did not finish after resume")

let test_same_arch_checkpoint_restore () =
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let code, out = native_run compiled Arch.X86_64 ~fuel in
  let code', out', _ =
    migrate_run compiled ~src:Arch.X86_64 ~dst:Arch.X86_64 ~warmup:100_000 ~fuel
  in
  check Alcotest.bool "identity migration exit" true (Int64.equal code code');
  check Alcotest.string "identity migration out" out out'

let test_crit_roundtrip_real_dump () =
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let p = Process.load compiled.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:100_000);
  (match Monitor.request_pause p ~budget:10_000_000 with
   | Error e -> Alcotest.fail (Monitor.error_to_string e)
   | Ok _ -> ());
  let image = ok (Dapper_criu.Dump.dump p) in
  (* files <-> image_set roundtrip *)
  let files = Dapper_criu.Images.to_files image in
  let back = Dapper_criu.Images.of_files files in
  check Alcotest.bool "image files roundtrip" true (back = image);
  (* CRIT decode -> encode roundtrip for protobuf files *)
  List.iter
    (fun (name, bytes) ->
      if name <> "pages-1.img" then begin
        let json = Dapper_criu.Crit.decode_file name bytes in
        let bytes' = Dapper_criu.Crit.encode_file name json in
        let json' = Dapper_criu.Crit.decode_file name bytes' in
        check Alcotest.bool ("crit roundtrip " ^ name) true (json = json')
      end)
    files

let test_shuffled_binary_runs () =
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  List.iter
    (fun arch ->
      let bin = Link.binary_for compiled arch in
      let code, out = native_run compiled arch ~fuel in
      let shuffled, stats = Shuffle.shuffle_binary (Dapper_util.Rng.create 42L) bin in
      check Alcotest.bool
        (Printf.sprintf "%s entropy positive" (Arch.name arch))
        true
        (Shuffle.average_bits stats > 0.0);
      check Alcotest.bool "code actually patched" true (stats.sh_instrs_rewritten > 0);
      let p = Process.load shuffled in
      match Process.run_to_completion p ~fuel with
      | Process.Exited_run code' ->
        check Alcotest.bool "shuffled exit equal" true (Int64.equal code code');
        check Alcotest.string "shuffled out equal" out (Process.stdout_contents p)
      | Process.Crashed c -> Alcotest.fail ("shuffled binary crashed: " ^ c.cr_reason)
      | Process.Idle | Process.Progress -> Alcotest.fail "shuffled binary did not finish")
    Arch.all

let test_live_stack_reshuffle () =
  (* Pause a live process, rewrite its image to the shuffled layout, and
     continue under the shuffled binary — the paper's re-randomization
     use case, implemented as a same-ISA rewrite. *)
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let code, out = native_run compiled Arch.X86_64 ~fuel in
  let bin = compiled.Link.cp_x86 in
  let p = Process.load bin in
  ignore (Process.run p ~max_instrs:100_000);
  (match Monitor.request_pause p ~budget:10_000_000 with
   | Error e -> Alcotest.fail (Monitor.error_to_string e)
   | Ok _ -> ());
  let out_before = Process.stdout_contents p in
  let image = ok (Dapper_criu.Dump.dump p) in
  let shuffled, _ = Shuffle.shuffle_binary (Dapper_util.Rng.create 7L) bin in
  let image', _ = ok (Rewrite.rewrite image ~src:bin ~dst:shuffled) in
  let p' = ok (Dapper_criu.Restore.restore image' shuffled) in
  match Process.run_to_completion p' ~fuel with
  | Process.Exited_run code' ->
    check Alcotest.bool "reshuffled exit equal" true (Int64.equal code code');
    check Alcotest.string "reshuffled out equal" out
      (out_before ^ Process.stdout_contents p')
  | Process.Crashed c -> Alcotest.fail ("reshuffled process crashed: " ^ c.cr_reason)
  | Process.Idle | Process.Progress -> Alcotest.fail "reshuffled did not finish"

let test_migration_time_breakdown_sane () =
  let m = compute_module () in
  let compiled = Link.compile ~app:"compute" m in
  let p = Process.load compiled.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:100_000);
  match
    Migrate.migrate ~src_node:Node.xeon ~dst_node:Node.rpi
      ~src_bin:compiled.Link.cp_x86 ~dst_bin:compiled.Link.cp_arm p
  with
  | Error e -> Alcotest.fail (Migrate.error_to_string e)
  | Ok r ->
    let t = r.r_times in
    check Alcotest.bool "all phases positive" true
      (t.t_checkpoint_ms > 0.0 && t.t_recode_ms > 0.0 && t.t_scp_ms > 0.0
       && t.t_restore_ms > 0.0);
    (* recode on the Pi is ~4x slower than on the Xeon (Fig. 5) *)
    let on_xeon = Migrate.recode_ns Node.xeon ~bytes:0 r.r_rewrite in
    let on_rpi = Migrate.recode_ns Node.rpi ~bytes:0 r.r_rewrite in
    check Alcotest.bool "recode slower on rpi" true (on_rpi > 3.0 *. on_xeon)

let suites =
  [ ( "dapper-migration",
      [ Alcotest.test_case "x86 -> arm" `Quick (test_cross_isa_migration Arch.X86_64 Arch.Aarch64);
        Alcotest.test_case "arm -> x86" `Quick (test_cross_isa_migration Arch.Aarch64 Arch.X86_64);
        Alcotest.test_case "many migration points" `Quick test_migration_points;
        Alcotest.test_case "multi-threaded migration" `Quick test_threaded_migration;
        Alcotest.test_case "lazy migration" `Quick test_lazy_migration;
        Alcotest.test_case "no-rewrite restore fails" `Quick test_restore_without_rewrite_fails;
        Alcotest.test_case "pause/cancel/resume" `Quick test_pause_cancel_resume;
        Alcotest.test_case "same-arch checkpoint/restore" `Quick test_same_arch_checkpoint_restore;
        Alcotest.test_case "crit roundtrip on real dump" `Quick test_crit_roundtrip_real_dump;
        Alcotest.test_case "time breakdown sane" `Quick test_migration_time_breakdown_sane ] );
    ( "dapper-shuffle",
      [ Alcotest.test_case "shuffled binary runs" `Quick test_shuffled_binary_runs;
        Alcotest.test_case "live stack reshuffle" `Quick test_live_stack_reshuffle ] ) ]
