open Dapper_isa
open Dapper_binary
open Dapper_machine
open Dapper
module Link = Dapper_codegen.Link

let check = Alcotest.check
let ok = Dapper_util.Dapper_error.ok_exn

let reference () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_arm in
  match Process.run_to_completion p ~fuel:50_000_000 with
  | Process.Exited_run v -> (c, v, Process.stdout_contents p)
  | _ -> Alcotest.fail "reference run failed"

let pause_and_dump p =
  (match Monitor.request_pause p ~budget:30_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  ok (Dapper_criu.Dump.dump p)

(* Property: migration is transparent at a *random* point, not just the
   handpicked ones in the integration tests. *)
let qcheck_migration_any_point =
  QCheck.Test.make ~name:"migration transparent at random points" ~count:8
    QCheck.(int_range 2_000 900_000)
    (fun warmup ->
      let c, code, out = reference () in
      let p = Process.load c.Link.cp_x86 in
      match Process.run p ~max_instrs:warmup with
      | Process.Exited_run v ->
        (* finished before the point: still must match the reference *)
        Int64.equal v code && String.equal (Process.stdout_contents p) out
      | Process.Progress ->
        let image = pause_and_dump p in
        let image', _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
        let q = ok (Dapper_criu.Restore.restore image' c.Link.cp_arm) in
        (match Process.run_to_completion q ~fuel:50_000_000 with
         | Process.Exited_run v ->
           Int64.equal v code
           && String.equal (Process.stdout_contents p ^ Process.stdout_contents q) out
         | _ -> false)
      | _ -> false)

let test_chained_migration () =
  (* x86 -> arm -> x86: the paper notes the target is decided by the
     executable, so rewriting must compose *)
  let c, code, out = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let image = pause_and_dump p in
  let image_arm, _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  let q = ok (Dapper_criu.Restore.restore image_arm c.Link.cp_arm) in
  ignore (Process.run q ~max_instrs:120_000);
  let image2 = pause_and_dump q in
  let image_x86, _ = ok (Rewrite.rewrite image2 ~src:c.Link.cp_arm ~dst:c.Link.cp_x86) in
  let r = ok (Dapper_criu.Restore.restore image_x86 c.Link.cp_x86) in
  match Process.run_to_completion r ~fuel:50_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "exit equal" true (Int64.equal v code);
    check Alcotest.string "output equal" out
      (Process.stdout_contents p ^ Process.stdout_contents q ^ Process.stdout_contents r)
  | _ -> Alcotest.fail "second migration failed"

let test_rewrite_rejects_mismatched_binaries () =
  let c, _, _ = reference () in
  let other = Registry_helpers.other_app () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:100_000);
  let image = pause_and_dump p in
  check Alcotest.bool "wrong src arch" true
    (match Rewrite.rewrite image ~src:c.Link.cp_arm ~dst:c.Link.cp_x86 with
     | Error (Dapper_util.Dapper_error.Recode_failed _) -> true
     | _ -> false);
  check Alcotest.bool "wrong app" true
    (match Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:other.Link.cp_arm with
     | Error (Dapper_util.Dapper_error.Recode_failed _) -> true
     | _ -> false)

(* Tamper with the source stack maps: the rewriter must fail loudly, not
   silently corrupt state. *)
let test_tampered_stackmaps_detected () =
  let c, _, _ = reference () in
  let tamper (bin : Binary.t) =
    { bin with
      bin_stackmaps =
        List.map
          (fun (fm : Stackmap.func_map) ->
            { fm with
              fm_eqpoints =
                List.map
                  (fun (ep : Stackmap.eqpoint) ->
                    { ep with
                      ep_live =
                        List.filter
                          (fun (lv : Stackmap.live_value) ->
                            match lv.lv_key with Stackmap.Temp _ -> false | _ -> true)
                          ep.ep_live })
                  fm.fm_eqpoints })
          bin.bin_stackmaps }
  in
  ignore c;
  (* a program whose loop keeps a temporary live across a call, so every
     checkpoint inside the loop must carry a Temp record *)
  let m =
    let open Dapper_clite.Cl in
    let m = create "temps" in
    Dapper_clite.Cstd.add m;
    func m "id" [ ("x", Dapper_ir.Ir.I64) ] (fun b -> ret b (v "x"));
    func m "main" [] (fun b ->
        decl b "s" (i 0);
        for_ b "k" (i 0) (i 100_000) (fun b ->
            set b "s" (add (v "s") (call "id" [ v "k" ])));
        ret b (rem_ (v "s") (i 251)));
    finish m
  in
  let ct = Link.compile ~app:"temps" m in
  let tampered = tamper ct.Link.cp_x86 in
  let p = Process.load ct.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:50_000);
  let image = pause_and_dump p in
  check Alcotest.bool "missing live values detected" true
    (match Rewrite.rewrite image ~src:tampered ~dst:ct.Link.cp_arm with
     | Error (Dapper_util.Dapper_error.Recode_failed _) -> true
     | _ -> false)

let test_corrupt_return_address_detected () =
  let c, _, _ = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:100_000);
  let image = pause_and_dump p in
  (* smash the innermost frame's saved return address in the image *)
  let tc = List.hd image.Dapper_criu.Images.is_cores in
  let fp = tc.tc_regs.(Arch.fp Arch.X86_64) in
  let image' =
    Dapper_criu.Images.write_u64 image (Int64.add fp 8L) 0xDEAD_BEEFL
  in
  check Alcotest.bool "unwind fails on corrupt stack" true
    (match Rewrite.rewrite image' ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm with
     | Error (Dapper_util.Dapper_error.Recode_failed _ | Dapper_util.Dapper_error.Unwind_failed _) -> true
     | _ -> false)

let test_rewrite_preserves_heap_and_globals () =
  let c, _, _ = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:200_000);
  let image = pause_and_dump p in
  let image', _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  (* every dumped non-stack, non-code page must be byte-identical *)
  let is_stack pn =
    let a = Layout.addr_of_page pn in
    Int64.compare a (Layout.stack_limit_of_thread (Layout.max_threads - 1)) >= 0
  in
  let is_code pn =
    let a = Layout.addr_of_page pn in
    Int64.compare a Layout.code_base >= 0 && Int64.compare a Layout.data_base < 0
  in
  let flag_pn = Layout.page_of_addr c.Link.cp_x86.bin_anchors.a_flag in
  List.iter
    (fun (e : Dapper_criu.Images.pagemap_entry) ->
      if e.pm_in_dump then
        for k = 0 to e.pm_npages - 1 do
          let pn = Layout.page_of_addr e.pm_vaddr + k in
          if (not (is_stack pn)) && (not (is_code pn)) && pn <> flag_pn then
            match (Dapper_criu.Images.read_page image pn,
                   Dapper_criu.Images.read_page image' pn) with
            | Some a, Some b ->
              check Alcotest.bool (Printf.sprintf "page %d preserved" pn) true (a = b)
            | _ -> Alcotest.fail "page disappeared"
        done)
    image.Dapper_criu.Images.is_pagemap

let test_rewrite_stats_sensible () =
  let c, _, _ = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:200_000);
  let image = pause_and_dump p in
  let _, st = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  check Alcotest.bool "threads" true (st.Rewrite.st_threads = 1);
  check Alcotest.bool "frames >= 1" true (st.Rewrite.st_frames >= 1);
  check Alcotest.bool "values >= frames" true (st.Rewrite.st_values >= st.Rewrite.st_frames);
  check Alcotest.bool "work positive" true (Rewrite.work_items st > 0)

(* Property: shuffled binaries are behaviour-preserving for any seed. *)
let qcheck_shuffle_any_seed =
  QCheck.Test.make ~name:"shuffle preserves behaviour for any seed" ~count:10
    QCheck.int64
    (fun seed ->
      let c, _, _ = reference () in
      let code, out =
        let p = Process.load c.Link.cp_x86 in
        match Process.run_to_completion p ~fuel:50_000_000 with
        | Process.Exited_run v -> (v, Process.stdout_contents p)
        | _ -> failwith "x86 native failed"
      in
      let shuffled, _ = Shuffle.shuffle_binary (Dapper_util.Rng.create seed) c.Link.cp_x86 in
      let p = Process.load shuffled in
      match Process.run_to_completion p ~fuel:50_000_000 with
      | Process.Exited_run v ->
        Int64.equal v code && String.equal (Process.stdout_contents p) out
      | _ -> false)

let suites =
  [ ( "rewrite",
      [ QCheck_alcotest.to_alcotest qcheck_migration_any_point;
        Alcotest.test_case "chained x86->arm->x86" `Quick test_chained_migration;
        Alcotest.test_case "mismatched binaries rejected" `Quick
          test_rewrite_rejects_mismatched_binaries;
        Alcotest.test_case "tampered stackmaps detected" `Quick
          test_tampered_stackmaps_detected;
        Alcotest.test_case "corrupt return address detected" `Quick
          test_corrupt_return_address_detected;
        Alcotest.test_case "heap/globals preserved" `Quick
          test_rewrite_preserves_heap_and_globals;
        Alcotest.test_case "stats sensible" `Quick test_rewrite_stats_sensible;
        QCheck_alcotest.to_alcotest qcheck_shuffle_any_seed ] ) ]
