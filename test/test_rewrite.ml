open Dapper_isa
open Dapper_binary
open Dapper_machine
open Dapper
module Link = Dapper_codegen.Link

let check = Alcotest.check
let ok = Dapper_util.Dapper_error.ok_exn

let reference () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_arm in
  match Process.run_to_completion p ~fuel:50_000_000 with
  | Process.Exited_run v -> (c, v, Process.stdout_contents p)
  | _ -> Alcotest.fail "reference run failed"

let pause_and_dump p =
  (match Monitor.request_pause p ~budget:30_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  ok (Dapper_criu.Dump.dump p)

(* Property: migration is transparent at a *random* point, not just the
   handpicked ones in the integration tests. *)
let qcheck_migration_any_point =
  QCheck.Test.make ~name:"migration transparent at random points" ~count:8
    QCheck.(int_range 2_000 900_000)
    (fun warmup ->
      let c, code, out = reference () in
      let p = Process.load c.Link.cp_x86 in
      match Process.run p ~max_instrs:warmup with
      | Process.Exited_run v ->
        (* finished before the point: still must match the reference *)
        Int64.equal v code && String.equal (Process.stdout_contents p) out
      | Process.Progress ->
        let image = pause_and_dump p in
        let image', _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
        let q = ok (Dapper_criu.Restore.restore image' c.Link.cp_arm) in
        (match Process.run_to_completion q ~fuel:50_000_000 with
         | Process.Exited_run v ->
           Int64.equal v code
           && String.equal (Process.stdout_contents p ^ Process.stdout_contents q) out
         | _ -> false)
      | _ -> false)

let test_chained_migration () =
  (* x86 -> arm -> x86: the paper notes the target is decided by the
     executable, so rewriting must compose *)
  let c, code, out = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let image = pause_and_dump p in
  let image_arm, _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  let q = ok (Dapper_criu.Restore.restore image_arm c.Link.cp_arm) in
  ignore (Process.run q ~max_instrs:120_000);
  let image2 = pause_and_dump q in
  let image_x86, _ = ok (Rewrite.rewrite image2 ~src:c.Link.cp_arm ~dst:c.Link.cp_x86) in
  let r = ok (Dapper_criu.Restore.restore image_x86 c.Link.cp_x86) in
  match Process.run_to_completion r ~fuel:50_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "exit equal" true (Int64.equal v code);
    check Alcotest.string "output equal" out
      (Process.stdout_contents p ^ Process.stdout_contents q ^ Process.stdout_contents r)
  | _ -> Alcotest.fail "second migration failed"

let test_rewrite_rejects_mismatched_binaries () =
  let c, _, _ = reference () in
  let other = Registry_helpers.other_app () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:100_000);
  let image = pause_and_dump p in
  check Alcotest.bool "wrong src arch" true
    (match Rewrite.rewrite image ~src:c.Link.cp_arm ~dst:c.Link.cp_x86 with
     | Error (Dapper_util.Dapper_error.Recode_failed _) -> true
     | _ -> false);
  check Alcotest.bool "wrong app" true
    (match Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:other.Link.cp_arm with
     | Error (Dapper_util.Dapper_error.Recode_failed _) -> true
     | _ -> false)

(* Tamper with the source stack maps: the rewriter must fail loudly, not
   silently corrupt state. *)
let test_tampered_stackmaps_detected () =
  let c, _, _ = reference () in
  let tamper (bin : Binary.t) =
    { bin with
      bin_stackmaps =
        List.map
          (fun (fm : Stackmap.func_map) ->
            { fm with
              fm_eqpoints =
                List.map
                  (fun (ep : Stackmap.eqpoint) ->
                    { ep with
                      ep_live =
                        List.filter
                          (fun (lv : Stackmap.live_value) ->
                            match lv.lv_key with Stackmap.Temp _ -> false | _ -> true)
                          ep.ep_live })
                  fm.fm_eqpoints })
          bin.bin_stackmaps }
  in
  ignore c;
  (* a program whose loop keeps a temporary live across a call, so every
     checkpoint inside the loop must carry a Temp record *)
  let m =
    let open Dapper_clite.Cl in
    let m = create "temps" in
    Dapper_clite.Cstd.add m;
    func m "id" [ ("x", Dapper_ir.Ir.I64) ] (fun b -> ret b (v "x"));
    func m "main" [] (fun b ->
        decl b "s" (i 0);
        for_ b "k" (i 0) (i 100_000) (fun b ->
            set b "s" (add (v "s") (call "id" [ v "k" ])));
        ret b (rem_ (v "s") (i 251)));
    finish m
  in
  let ct = Link.compile ~app:"temps" m in
  let tampered = tamper ct.Link.cp_x86 in
  let p = Process.load ct.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:50_000);
  let image = pause_and_dump p in
  check Alcotest.bool "missing live values detected" true
    (match Rewrite.rewrite image ~src:tampered ~dst:ct.Link.cp_arm with
     | Error (Dapper_util.Dapper_error.Recode_failed _) -> true
     | _ -> false)

let test_corrupt_return_address_detected () =
  let c, _, _ = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:100_000);
  let image = pause_and_dump p in
  (* smash the innermost frame's saved return address in the image *)
  let tc = List.hd image.Dapper_criu.Images.is_cores in
  let fp = tc.tc_regs.(Arch.fp Arch.X86_64) in
  let image' =
    Dapper_criu.Images.write_u64 image (Int64.add fp 8L) 0xDEAD_BEEFL
  in
  check Alcotest.bool "unwind fails on corrupt stack" true
    (match Rewrite.rewrite image' ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm with
     | Error (Dapper_util.Dapper_error.Recode_failed _ | Dapper_util.Dapper_error.Unwind_failed _) -> true
     | _ -> false)

let test_rewrite_preserves_heap_and_globals () =
  let c, _, _ = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:200_000);
  let image = pause_and_dump p in
  let image', _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  (* every dumped non-stack, non-code page must be byte-identical *)
  let is_stack pn =
    let a = Layout.addr_of_page pn in
    Int64.compare a (Layout.stack_limit_of_thread (Layout.max_threads - 1)) >= 0
  in
  let is_code pn =
    let a = Layout.addr_of_page pn in
    Int64.compare a Layout.code_base >= 0 && Int64.compare a Layout.data_base < 0
  in
  let flag_pn = Layout.page_of_addr c.Link.cp_x86.bin_anchors.a_flag in
  List.iter
    (fun (e : Dapper_criu.Images.pagemap_entry) ->
      if e.pm_in_dump then
        for k = 0 to e.pm_npages - 1 do
          let pn = Layout.page_of_addr e.pm_vaddr + k in
          if (not (is_stack pn)) && (not (is_code pn)) && pn <> flag_pn then
            match (Dapper_criu.Images.read_page image pn,
                   Dapper_criu.Images.read_page image' pn) with
            | Some a, Some b ->
              check Alcotest.bool (Printf.sprintf "page %d preserved" pn) true (a = b)
            | _ -> Alcotest.fail "page disappeared"
        done)
    image.Dapper_criu.Images.is_pagemap

let test_rewrite_stats_sensible () =
  let c, _, _ = reference () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:200_000);
  let image = pause_and_dump p in
  let _, st = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  check Alcotest.bool "threads" true (st.Rewrite.st_threads = 1);
  check Alcotest.bool "frames >= 1" true (st.Rewrite.st_frames >= 1);
  check Alcotest.bool "values >= frames" true (st.Rewrite.st_values >= st.Rewrite.st_frames);
  check Alcotest.bool "work positive" true (Rewrite.work_items st > 0)

(* Property: shuffled binaries are behaviour-preserving for any seed. *)
let qcheck_shuffle_any_seed =
  QCheck.Test.make ~name:"shuffle preserves behaviour for any seed" ~count:10
    QCheck.int64
    (fun seed ->
      let c, _, _ = reference () in
      let code, out =
        let p = Process.load c.Link.cp_x86 in
        match Process.run_to_completion p ~fuel:50_000_000 with
        | Process.Exited_run v -> (v, Process.stdout_contents p)
        | _ -> failwith "x86 native failed"
      in
      let shuffled, _ = Shuffle.shuffle_binary (Dapper_util.Rng.create seed) c.Link.cp_x86 in
      let p = Process.load shuffled in
      match Process.run_to_completion p ~fuel:50_000_000 with
      | Process.Exited_run v ->
        Int64.equal v code && String.equal (Process.stdout_contents p) out
      | _ -> false)

(* Property: incremental recode is invisible. Populate an output memo
   with a cold rewrite, mutate a random subset of the dumped data pages
   (never stack, code or the pause flag — those feed the rewriter
   itself), then rewrite the mutated image twice: once from scratch and
   once against the warm memo. The two outputs must be byte-identical —
   page/thread memo hits can only skip work, never change bytes. Corpus:
   the seeded generator behind the fuzz oracle. *)
let qcheck_incremental_rewrite_byte_equal =
  QCheck.Test.make ~name:"incremental recode byte-equals full recode" ~count:6
    QCheck.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (gen_seed, mut_seed) ->
      let c = Dapper_verify.Gen.compile gen_seed in
      let p = Process.load c.Link.cp_x86 in
      match Monitor.request_pause p ~budget:50_000_000 with
      | Error Dapper_util.Dapper_error.Process_exited -> true (* no point reached *)
      | Error e -> failwith (Monitor.error_to_string e)
      | Ok _ ->
        let image = ok (Dapper_criu.Dump.dump p) in
        let memo = Plan_cache.create_memo () in
        let cold, _ = ok (Rewrite.rewrite ~memo image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
        let plain, _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
        let files i = List.sort compare (Dapper_criu.Images.to_files i) in
        if files cold <> files plain then failwith "cold memo run diverged";
        (* mutate a random subset of in-dump data pages *)
        let is_stack pn =
          let a = Layout.addr_of_page pn in
          Int64.compare a (Layout.stack_limit_of_thread (Layout.max_threads - 1)) >= 0
        in
        let is_code pn =
          let a = Layout.addr_of_page pn in
          Int64.compare a Layout.code_base >= 0 && Int64.compare a Layout.data_base < 0
        in
        let flag_pn = Layout.page_of_addr c.Link.cp_x86.bin_anchors.a_flag in
        let candidates =
          List.concat_map
            (fun (e : Dapper_criu.Images.pagemap_entry) ->
              if not e.pm_in_dump then []
              else
                List.filter
                  (fun pn -> (not (is_stack pn)) && (not (is_code pn)) && pn <> flag_pn)
                  (List.init e.pm_npages (fun k -> Layout.page_of_addr e.pm_vaddr + k)))
            image.Dapper_criu.Images.is_pagemap
        in
        let rng = Dapper_util.Rng.create (Int64.of_int ((mut_seed * 2) + 1)) in
        let mutated, n_mutated =
          List.fold_left
            (fun (img, n) pn ->
              if Dapper_util.Rng.float rng < 0.4 then
                match Dapper_criu.Images.read_page img pn with
                | None -> (img, n)
                | Some page ->
                  let b = Bytes.of_string page in
                  let off = Dapper_util.Rng.int rng (Bytes.length b) in
                  Bytes.set b off
                    (Char.chr (Char.code (Bytes.get b off) lxor 0x5a));
                  (Dapper_criu.Images.write_page img pn (Bytes.to_string b), n + 1)
              else (img, n))
            (image, 0) candidates
        in
        let warm, wst =
          ok (Rewrite.rewrite ~memo mutated ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm)
        in
        let full, _ = ok (Rewrite.rewrite mutated ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
        (* untouched stacks always replay from the memo; pass-through
           pages hit unless this draw mutated every candidate *)
        (wst.Rewrite.st_memo_thread_hits > 0
         || wst.Rewrite.st_memo_page_hits > 0
         || n_mutated = List.length candidates)
        && files warm = files full)

let suites =
  [ ( "rewrite",
      [ QCheck_alcotest.to_alcotest qcheck_migration_any_point;
        Alcotest.test_case "chained x86->arm->x86" `Quick test_chained_migration;
        Alcotest.test_case "mismatched binaries rejected" `Quick
          test_rewrite_rejects_mismatched_binaries;
        Alcotest.test_case "tampered stackmaps detected" `Quick
          test_tampered_stackmaps_detected;
        Alcotest.test_case "corrupt return address detected" `Quick
          test_corrupt_return_address_detected;
        Alcotest.test_case "heap/globals preserved" `Quick
          test_rewrite_preserves_heap_and_globals;
        Alcotest.test_case "stats sensible" `Quick test_rewrite_stats_sensible;
        QCheck_alcotest.to_alcotest qcheck_shuffle_any_seed;
        QCheck_alcotest.to_alcotest qcheck_incremental_rewrite_byte_equal ] ) ]
