open Dapper_net

let check = Alcotest.check

let test_link_transfer_math () =
  (* 1.2 GB/s: 1.2e9 bytes in 1s; transfer of 12 MB ~ 10ms + 30us latency *)
  let ns = Link.transfer_ns Link.infiniband 12_000_000 in
  check Alcotest.bool "12MB over IB ~ 10ms" true (ns > 9.0e6 && ns < 11.0e6);
  check Alcotest.bool "latency floor" true
    (Link.transfer_ns Link.infiniband 0 >= 30.0e3);
  check Alcotest.bool "gigabit slower" true
    (Link.transfer_ns Link.gigabit 12_000_000 > ns)

let test_page_fetch_latency_dominated () =
  let one_page = Link.page_fetch_ns Link.infiniband 4096 in
  (* round trip 60us dominates the ~3.4us payload *)
  check Alcotest.bool "latency dominated" true (one_page > 60.0e3 && one_page < 80.0e3)

let test_node_power_model () =
  (* paper: 108 W at 7 busy Xeon threads; 5.1 W at 3 busy Pi threads *)
  check (Alcotest.float 1.0) "xeon@7" 108.0 (Node.power_w Node.xeon ~busy:7);
  check (Alcotest.float 0.2) "rpi@3" 5.1 (Node.power_w Node.rpi ~busy:3);
  check Alcotest.bool "capped at core count" true
    (Node.power_w Node.rpi ~busy:100 = Node.power_w Node.rpi ~busy:4)

let test_exec_speed_ratio () =
  let instrs = 1_000_000L in
  let ratio = Node.exec_ns Node.rpi instrs /. Node.exec_ns Node.xeon instrs in
  check Alcotest.bool "pi ~2.8x slower" true (ratio > 2.5 && ratio < 3.1)

let suites =
  [ ( "net",
      [ Alcotest.test_case "link transfer math" `Quick test_link_transfer_math;
        Alcotest.test_case "page fetch latency" `Quick test_page_fetch_latency_dominated;
        Alcotest.test_case "node power model" `Quick test_node_power_model;
        Alcotest.test_case "exec speed ratio" `Quick test_exec_speed_ratio ] ) ]
