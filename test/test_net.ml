open Dapper_net
module Fault = Dapper_util.Fault
module Derr = Dapper_util.Dapper_error

let check = Alcotest.check

let test_link_transfer_math () =
  (* 1.2 GB/s: 1.2e9 bytes in 1s; transfer of 12 MB ~ 10ms + 30us latency *)
  let ns = Link.transfer_ns Link.infiniband 12_000_000 in
  check Alcotest.bool "12MB over IB ~ 10ms" true (ns > 9.0e6 && ns < 11.0e6);
  check Alcotest.bool "latency floor" true
    (Link.transfer_ns Link.infiniband 0 >= 30.0e3);
  check Alcotest.bool "gigabit slower" true
    (Link.transfer_ns Link.gigabit 12_000_000 > ns)

let test_page_fetch_latency_dominated () =
  let one_page = Link.page_fetch_ns Link.infiniband 4096 in
  (* round trip 60us dominates the ~3.4us payload *)
  check Alcotest.bool "latency dominated" true (one_page > 60.0e3 && one_page < 80.0e3)

let test_node_power_model () =
  (* paper: 108 W at 7 busy Xeon threads; 5.1 W at 3 busy Pi threads *)
  check (Alcotest.float 1.0) "xeon@7" 108.0 (Node.power_w Node.xeon ~busy:7);
  check (Alcotest.float 0.2) "rpi@3" 5.1 (Node.power_w Node.rpi ~busy:3);
  check Alcotest.bool "capped at core count" true
    (Node.power_w Node.rpi ~busy:100 = Node.power_w Node.rpi ~busy:4)

let test_exec_speed_ratio () =
  let instrs = 1_000_000L in
  let ratio = Node.exec_ns Node.rpi instrs /. Node.exec_ns Node.xeon instrs in
  check Alcotest.bool "pi ~2.8x slower" true (ratio > 2.5 && ratio < 3.1)

(* ----- wrapper composition ----- *)

let test_degraded_composition () =
  let scp = Transport.scp Link.infiniband in
  let nested = Transport.degraded ~factor:2.0 (Transport.degraded ~factor:3.0 scp) in
  let bytes = 1 lsl 20 in
  check Alcotest.bool "nested factors multiply" true
    (Transport.transfer_ns nested bytes = 6.0 *. Transport.transfer_ns scp bytes);
  check Alcotest.bool "page fetches degrade too" true
    (Transport.page_fetch_ns nested 4096 = 6.0 *. Transport.page_fetch_ns scp 4096);
  check Alcotest.string "name reflects the nesting"
    "scp/infiniband (degraded x3) (degraded x2)" (Transport.name nested);
  check Alcotest.bool "factor < 1 rejected" true
    (match Transport.degraded ~factor:0.99 scp with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_retrying_policy () =
  let scp = Transport.scp Link.infiniband in
  check Alcotest.int "bare transport: one attempt" 1 (Transport.attempts scp);
  let r = Transport.retrying scp in
  check Alcotest.int "default four attempts" 4 (Transport.attempts r);
  check Alcotest.string "name reflects the policy" "retrying[4](scp/infiniband)"
    (Transport.name r);
  check Alcotest.string "composes with degradation"
    "retrying[4](scp/infiniband (degraded x2))"
    (Transport.name (Transport.retrying (Transport.degraded ~factor:2.0 scp)));
  check Alcotest.bool "attempts < 1 rejected" true
    (match Transport.retrying ~attempts:0 scp with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check Alcotest.bool "multiplier < 1 rejected" true
    (match Transport.retrying ~multiplier:0.5 scp with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ----- checksummed transmission under the fault plane ----- *)

let files = [ ("a.img", "aaaa-payload"); ("b.img", "bbbb-payload") ]

let test_transmit_clean () =
  let t = Transport.scp Link.infiniband in
  let stats = Transport.fresh_tx_stats () in
  match Transport.transmit t ~stats ~bytes:4096 files with
  | Error e -> Alcotest.fail (Derr.to_string e)
  | Ok (received, ns) ->
    check Alcotest.bool "delivered verbatim" true (received = files);
    check Alcotest.bool "cost is exactly one transfer" true
      (ns = Transport.transfer_ns t 4096);
    check Alcotest.int "one attempt" 1 stats.Transport.tx_attempts;
    check Alcotest.int "no retransmits" 0 stats.Transport.tx_retransmits;
    check Alcotest.bool "no fault latency" true (stats.Transport.tx_fault_ns = 0.0)

let test_transmit_drop_and_recovery () =
  (* certain drop, no retry policy: the transfer times out (retriable) *)
  let t = Transport.scp Link.infiniband in
  let stats = Transport.fresh_tx_stats () in
  let fault = Fault.make ~seed:5 { Fault.calm with Fault.fs_drop = 1.0 } in
  (match Transport.transmit t ~fault ~stats ~bytes:4096 files with
   | Error (Derr.Transfer_timeout _ as e) ->
     check Alcotest.bool "timeout is retriable" true (Derr.retriable e)
   | Error e -> Alcotest.fail ("wrong error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "certain drop cannot deliver");
  check Alcotest.int "drop recorded" 1 stats.Transport.tx_dropped;
  (* certain drop, three attempts: every attempt fails, backoff charged *)
  let stats = Transport.fresh_tx_stats () in
  let fault = Fault.make ~seed:5 { Fault.calm with Fault.fs_drop = 1.0 } in
  (match
     Transport.transmit (Transport.retrying ~attempts:3 t) ~fault ~stats
       ~bytes:4096 files
   with
   | Error (Derr.Transfer_timeout _) -> ()
   | Error e -> Alcotest.fail ("wrong error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "certain drop cannot deliver");
  check Alcotest.int "three attempts" 3 stats.Transport.tx_attempts;
  check Alcotest.int "two retransmissions" 2 stats.Transport.tx_retransmits;
  check Alcotest.bool "backoff charged as backoff, not fault latency" true
    (stats.Transport.tx_backoff_ns > 0.0 && stats.Transport.tx_fault_ns = 0.0)

(* The backoff the tallies charge must equal the closed-form sum over
   the retries that actually followed a failure: with [attempts]
   tries, [attempts - 1] backoffs — none after the final attempt. *)
let test_backoff_closed_form () =
  let mk attempts =
    Transport.retrying ~attempts ~backoff_ns:2.0e6 ~multiplier:2.0
      (Transport.scp Link.infiniband)
  in
  (* 2 ms + 4 ms, and nothing for the third (final) failure *)
  check (Alcotest.float 0.0) "closed form: 3 failures" 6.0e6
    (Transport.total_backoff_ns (mk 3) ~failures:3);
  check (Alcotest.float 0.0) "closed form: 1 failure, no retry" 0.0
    (Transport.total_backoff_ns (mk 3) ~failures:1);
  check (Alcotest.float 0.0) "closed form: no policy" 0.0
    (Transport.total_backoff_ns (Transport.scp Link.infiniband) ~failures:4);
  (* certain drop: every attempt fails, so the charged backoff must be
     exactly the closed form for [attempts] failures *)
  List.iter
    (fun attempts ->
      let t = mk attempts in
      let stats = Transport.fresh_tx_stats () in
      let fault = Fault.make ~seed:5 { Fault.calm with Fault.fs_drop = 1.0 } in
      (match Transport.transmit t ~fault ~stats ~bytes:4096 files with
       | Error (Derr.Transfer_timeout _) -> ()
       | Error e -> Alcotest.fail ("wrong error: " ^ Derr.to_string e)
       | Ok _ -> Alcotest.fail "certain drop cannot deliver");
      check (Alcotest.float 0.0)
        (Printf.sprintf "charged backoff equals closed form (%d attempts)" attempts)
        (Transport.total_backoff_ns t ~failures:attempts)
        stats.Transport.tx_backoff_ns)
    [ 1; 2; 3; 4 ];
  (* same invariant on the page-fetch path *)
  let t =
    Transport.retrying ~attempts:3 ~backoff_ns:2.0e6 ~multiplier:2.0
      (Transport.page_server Link.infiniband)
  in
  let stats = Transport.fresh_page_stats () in
  let fault = Fault.make ~seed:3 { Fault.calm with Fault.fs_drop = 1.0 } in
  let serve pn = if pn = 7 then Some (Bytes.make 4096 'p') else None in
  (match Transport.fetch_page t ~fault stats ~page_bytes:4096 serve 7 with
   | Error (Derr.Transfer_timeout _) -> ()
   | Error e -> Alcotest.fail ("wrong error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "certain drop cannot deliver");
  check (Alcotest.float 0.0) "page backoff equals closed form" 6.0e6
    stats.Transport.srv_backoff_ns;
  check Alcotest.bool "backoff included in srv_ns" true
    (stats.Transport.srv_ns >= stats.Transport.srv_backoff_ns)

let test_transmit_corruption_detected () =
  let t = Transport.scp Link.infiniband in
  (* certain corruption, no retry policy: checksum mismatch surfaces *)
  let stats = Transport.fresh_tx_stats () in
  let fault = Fault.make ~seed:7 { Fault.calm with Fault.fs_corrupt = 1.0 } in
  (match Transport.transmit t ~fault ~stats ~bytes:4096 files with
   | Error (Derr.Checksum_mismatch _ as e) ->
     check Alcotest.bool "mismatch is retriable" true (Derr.retriable e)
   | Error e -> Alcotest.fail ("wrong error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "corruption must not deliver");
  check Alcotest.bool "corruption detected" true (stats.Transport.tx_corrupt > 0)

let test_transmit_delay_survives () =
  (* certain delay: delivery succeeds, the added latency is accounted *)
  let t = Transport.scp Link.infiniband in
  let stats = Transport.fresh_tx_stats () in
  let fault =
    Fault.make ~seed:9
      { Fault.calm with Fault.fs_delay = 1.0; fs_delay_ns = 7.0e6 }
  in
  match Transport.transmit t ~fault ~stats ~bytes:4096 files with
  | Error e -> Alcotest.fail (Derr.to_string e)
  | Ok (received, ns) ->
    check Alcotest.bool "delivered verbatim" true (received = files);
    (* one 7 ms delay per file *)
    check Alcotest.bool "delays charged to the wire time" true
      (abs_float (ns -. (Transport.transfer_ns t 4096 +. 14.0e6)) < 1.0);
    check Alcotest.bool "delays accounted as fault latency" true
      (stats.Transport.tx_fault_ns = 14.0e6)

(* ----- fault-aware page fetches ----- *)

let page = Bytes.make 4096 'p'
let fetch pn = if pn = 7 then Some (Bytes.copy page) else None

let test_fetch_page_paths () =
  let t = Transport.retrying ~attempts:3 (Transport.page_server Link.infiniband) in
  let stats = Transport.fresh_page_stats () in
  (* clean fetch *)
  (match Transport.fetch_page t stats ~page_bytes:4096 fetch 7 with
   | Ok (Some data) -> check Alcotest.bool "page intact" true (Bytes.equal data page)
   | _ -> Alcotest.fail "clean fetch must succeed");
  check Alcotest.int "one page served" 1 stats.Transport.srv_pages;
  (* a missing page is not a fault *)
  (match Transport.fetch_page t stats ~page_bytes:4096 fetch 8 with
   | Ok None -> ()
   | _ -> Alcotest.fail "missing page must be Ok None");
  (* certain drop: retries then times out, retransmissions counted *)
  let fault = Fault.make ~seed:3 { Fault.calm with Fault.fs_drop = 1.0 } in
  (match Transport.fetch_page t ~fault stats ~page_bytes:4096 fetch 7 with
   | Error (Derr.Transfer_timeout _) -> ()
   | Error e -> Alcotest.fail ("wrong error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "certain drop cannot deliver");
  check Alcotest.int "two retransmissions" 2 stats.Transport.srv_retransmits;
  (* source crash: the page server is gone; structural, migration must
     roll back rather than retry against a dead node *)
  let fault = Fault.make ~seed:3 { Fault.calm with Fault.fs_crash_source = 1.0 } in
  (match Transport.fetch_page t ~fault stats ~page_bytes:4096 fetch 7 with
   | Error (Derr.Source_lost _ as e) ->
     check Alcotest.bool "source loss is structural" true (not (Derr.retriable e))
   | Error e -> Alcotest.fail ("wrong error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "crashed source cannot serve");
  (* eager transports have no page path *)
  check Alcotest.bool "eager transport rejected" true
    (match
       Transport.fetch_page (Transport.scp Link.infiniband) stats ~page_bytes:4096
         fetch 7
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ----- sharded job queue ----- *)

let test_shard_queue_round_robin () =
  let q = Shard_queue.create ~shards:3 [ 0; 1; 2; 3; 4; 5; 6 ] in
  check Alcotest.int "length" 7 (Shard_queue.length q);
  check Alcotest.int "shards" 3 (Shard_queue.shards q);
  (* item i lands in shard i mod 3: shard 0 holds 0,3,6 *)
  check Alcotest.bool "home pops in FIFO order" true
    (Shard_queue.pop q ~shard:0 = Some 0 && Shard_queue.pop q ~shard:0 = Some 3);
  check Alcotest.int "no steals yet" 0 (Shard_queue.steals q);
  check Alcotest.bool "peek agrees with pop" true
    (Shard_queue.peek q ~shard:1 = Some 1 && Shard_queue.pop q ~shard:1 = Some 1);
  check Alcotest.bool "push goes to the named shard" true
    (Shard_queue.push q ~shard:1 99;
     Shard_queue.pop q ~shard:1 = Some 4 && Shard_queue.pop q ~shard:1 = Some 99)

let test_shard_queue_stealing () =
  let q = Shard_queue.create ~shards:3 [ 0; 1; 2 ] in
  (* drain shard 0's home item, then steal cyclically: 1 (shard 1), 2 (shard 2) *)
  check Alcotest.bool "home first" true (Shard_queue.pop q ~shard:0 = Some 0);
  check Alcotest.bool "steals from next shard" true
    (Shard_queue.pop q ~shard:0 = Some 1);
  check Alcotest.bool "then the one after" true (Shard_queue.pop q ~shard:0 = Some 2);
  check Alcotest.int "two steals counted" 2 (Shard_queue.steals q);
  check Alcotest.bool "dry everywhere" true
    (Shard_queue.pop q ~shard:0 = None && Shard_queue.is_empty q);
  check Alcotest.bool "zero shards rejected" true
    (match Shard_queue.create ~shards:0 [] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_shard_queue_deterministic () =
  let drain shards n =
    let q = Shard_queue.create ~shards (List.init n Fun.id) in
    let rec go shard acc =
      match Shard_queue.pop q ~shard with
      | None -> List.rev acc
      | Some x -> go ((shard + 1) mod shards) (x :: acc)
    in
    go 0 []
  in
  check Alcotest.bool "identical runs pop identically" true
    (drain 4 64 = drain 4 64);
  check Alcotest.bool "every item pops exactly once" true
    (List.sort compare (drain 4 64) = List.init 64 Fun.id)

(* ----- per-rack page-server pools ----- *)

let test_rack_pooling () =
  let r = Rack.create ~racks:2 ~servers_each:2 in
  (* two servers: two transfers run in parallel, the third queues *)
  check (Alcotest.float 1e-9) "first free server" 10.0
    (Rack.acquire r ~rack:0 ~now_ms:0.0 ~service_ms:10.0);
  check (Alcotest.float 1e-9) "second free server" 10.0
    (Rack.acquire r ~rack:0 ~now_ms:0.0 ~service_ms:10.0);
  check (Alcotest.float 1e-9) "third transfer queues" 20.0
    (Rack.acquire r ~rack:0 ~now_ms:0.0 ~service_ms:10.0);
  check (Alcotest.float 1e-9) "queueing delay accounted" 10.0 (Rack.queue_delay_ms r);
  (* the other rack is unaffected *)
  check (Alcotest.float 1e-9) "racks are independent" 5.0
    (Rack.acquire r ~rack:1 ~now_ms:0.0 ~service_ms:5.0);
  check Alcotest.int "served count" 4 (Rack.served r);
  (* wait estimate books nothing *)
  check (Alcotest.float 1e-9) "wait estimate" 10.0 (Rack.wait_ms r ~rack:0 ~now_ms:0.0);
  check (Alcotest.float 1e-9) "estimate is free" 10.0 (Rack.wait_ms r ~rack:0 ~now_ms:0.0);
  (* a late arrival starts at its own clock, not the server's *)
  check (Alcotest.float 1e-9) "idle server serves immediately" 105.0
    (Rack.acquire r ~rack:0 ~now_ms:100.0 ~service_ms:5.0)

let test_rack_striping_and_validation () =
  check Alcotest.int "node striping" 1 (Rack.rack_of_node ~racks:4 ~node:5);
  check Alcotest.bool "bad config rejected" true
    (match Rack.create ~racks:0 ~servers_each:1 with
     | exception Invalid_argument _ -> true
     | _ -> false);
  let r = Rack.create ~racks:1 ~servers_each:1 in
  check Alcotest.bool "rack out of range" true
    (match Rack.acquire r ~rack:9 ~now_ms:0.0 ~service_ms:1.0 with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check Alcotest.bool "negative service rejected" true
    (match Rack.acquire r ~rack:0 ~now_ms:0.0 ~service_ms:(-1.0) with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ----- chunked producer/consumer pipeline schedule ----- *)

let test_pipeline_single_chunk_degenerates () =
  (* chunk_bytes >= bytes: exactly the sequential pipeline *)
  let t = Transport.scp Link.infiniband in
  let bytes = 100_000 in
  let s = Transport.pipeline_schedule t ~bytes ~chunk_bytes:(bytes * 2)
            ~recode_ns:5.0e6 in
  check Alcotest.int "one chunk" 1 s.Transport.pp_chunks;
  check (Alcotest.float 1e-6) "exposed = sequential transfer"
    (Transport.transfer_ns t bytes) s.Transport.pp_exposed_ns;
  check (Alcotest.float 1e-6) "nothing hidden" 0.0 s.Transport.pp_hidden_ns

let test_pipeline_invariants () =
  let t = Transport.scp Link.infiniband in
  let bytes = 1 lsl 20 in
  List.iter
    (fun (chunk_bytes, recode_ns) ->
      let s = Transport.pipeline_schedule t ~bytes ~chunk_bytes ~recode_ns in
      let seq = Transport.transfer_ns t bytes in
      (* the overlap can only help: exposed tail never exceeds the
         sequential wire cost plus the chunking latency overhead *)
      check Alcotest.bool "hidden bounded by recode" true
        (s.Transport.pp_hidden_ns <= recode_ns +. 1e-6);
      check Alcotest.bool "hidden bounded by wire busy" true
        (s.Transport.pp_hidden_ns <= s.Transport.pp_wire_ns +. 1e-6);
      check Alcotest.bool "exposed >= last chunk tx" true
        (match List.rev s.Transport.pp_schedule with
         | last :: _ -> s.Transport.pp_exposed_ns >= last.Transport.ck_tx_ns -. 1e-6
         | [] -> false);
      check Alcotest.bool "makespan = recode + exposed" true
        (abs_float
           (s.Transport.pp_makespan_ns
            -. (recode_ns +. s.Transport.pp_exposed_ns)) < 1e-3);
      check Alcotest.bool "conservation: makespan >= max(recode, wire)" true
        (s.Transport.pp_makespan_ns >= max recode_ns s.Transport.pp_wire_ns -. 1e-3);
      (* chunked wire busy time covers at least the sequential cost
         (chunking adds per-transfer latency, never removes payload) *)
      check Alcotest.bool "wire busy >= sequential" true
        (s.Transport.pp_wire_ns >= seq -. 1e-3))
    [ (4096, 0.0); (4096, 2.0e6); (65536, 2.0e6); (65536, 50.0e6);
      (262_144, 0.5e6) ]

let test_pipeline_rejects_garbage () =
  let t = Transport.scp Link.infiniband in
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "negative bytes" true
    (bad (fun () -> Transport.pipeline_schedule t ~bytes:(-1) ~chunk_bytes:4096
                      ~recode_ns:0.0));
  check Alcotest.bool "zero chunk" true
    (bad (fun () -> Transport.pipeline_schedule t ~bytes:4096 ~chunk_bytes:0
                      ~recode_ns:0.0));
  check Alcotest.bool "negative recode" true
    (bad (fun () -> Transport.pipeline_schedule t ~bytes:4096 ~chunk_bytes:4096
                      ~recode_ns:(-1.0)))

(* fetch_stall_ns: the cost-only mirror of fetch_page the live-traffic
   plane charges millions of request stalls through. *)
let test_fetch_stall_sampling () =
  let t = Transport.page_server Link.infiniband in
  let clean = Transport.fetch_stall_ns t ~page_bytes:4096 () in
  check (Alcotest.float 0.0) "clean stall = one page fetch"
    (Transport.page_fetch_ns t 4096) clean;
  check (Alcotest.float 0.0) "deterministic without faults" clean
    (Transport.fetch_stall_ns t ~page_bytes:4096 ());
  (* a delay-injecting schedule costs strictly more than the clean path *)
  let delayed =
    let fault =
      Fault.make ~seed:9
        { Fault.calm with Fault.fs_delay = 1.0; fs_delay_ns = 5.0e6 }
    in
    Transport.fetch_stall_ns t ~fault ~page_bytes:4096 ()
  in
  check Alcotest.bool "injected delay adds latency" true (delayed > clean);
  (* drops under a retrying wrapper pay round trips plus backoff *)
  let retried =
    let fault = Fault.make ~seed:5 { Fault.calm with Fault.fs_drop = 0.9 } in
    Transport.fetch_stall_ns
      (Transport.retrying ~attempts:4 t)
      ~fault ~page_bytes:4096 ()
  in
  check Alcotest.bool "retried fetch costs more than clean" true
    (retried > clean);
  (* same schedule position, same sample *)
  let again =
    let fault = Fault.make ~seed:5 { Fault.calm with Fault.fs_drop = 0.9 } in
    Transport.fetch_stall_ns
      (Transport.retrying ~attempts:4 t)
      ~fault ~page_bytes:4096 ()
  in
  check (Alcotest.float 0.0) "fault schedule replay is deterministic" retried
    again;
  try
    ignore (Transport.fetch_stall_ns (Transport.scp Link.infiniband)
              ~page_bytes:4096 ());
    Alcotest.fail "eager transport accepted a fault sample"
  with Invalid_argument _ -> ()

let test_rack_acquire_wait () =
  let t = Rack.create ~racks:1 ~servers_each:1 in
  let finish, wait = Rack.acquire_wait t ~rack:0 ~now_ms:0.0 ~service_ms:5.0 in
  check (Alcotest.float 0.0) "idle server: no wait" 0.0 wait;
  check (Alcotest.float 0.0) "idle server: finish = service" 5.0 finish;
  (* estimate agrees with what the next acquire will actually be charged *)
  check (Alcotest.float 0.0) "wait_ms estimate matches" 4.0
    (Rack.wait_ms t ~rack:0 ~now_ms:1.0);
  let finish, wait = Rack.acquire_wait t ~rack:0 ~now_ms:1.0 ~service_ms:5.0 in
  check (Alcotest.float 0.0) "busy server: queued behind" 4.0 wait;
  check (Alcotest.float 0.0) "busy server: finish stacked" 10.0 finish;
  (* acquire is acquire_wait without the wait component *)
  check (Alcotest.float 0.0) "acquire = fst acquire_wait" 15.0
    (Rack.acquire t ~rack:0 ~now_ms:2.0 ~service_ms:5.0)

let suites =
  [ ( "net",
      [ Alcotest.test_case "link transfer math" `Quick test_link_transfer_math;
        Alcotest.test_case "page fetch latency" `Quick test_page_fetch_latency_dominated;
        Alcotest.test_case "node power model" `Quick test_node_power_model;
        Alcotest.test_case "exec speed ratio" `Quick test_exec_speed_ratio;
        Alcotest.test_case "degraded composes" `Quick test_degraded_composition;
        Alcotest.test_case "retrying policy" `Quick test_retrying_policy;
        Alcotest.test_case "transmit: clean" `Quick test_transmit_clean;
        Alcotest.test_case "transmit: drop + recovery" `Quick
          test_transmit_drop_and_recovery;
        Alcotest.test_case "backoff closed form" `Quick test_backoff_closed_form;
        Alcotest.test_case "transmit: corruption detected" `Quick
          test_transmit_corruption_detected;
        Alcotest.test_case "transmit: delay survives" `Quick test_transmit_delay_survives;
        Alcotest.test_case "fetch_page: fault paths" `Quick test_fetch_page_paths;
        Alcotest.test_case "shard queue: round robin" `Quick
          test_shard_queue_round_robin;
        Alcotest.test_case "shard queue: deterministic stealing" `Quick
          test_shard_queue_stealing;
        Alcotest.test_case "shard queue: whole-queue determinism" `Quick
          test_shard_queue_deterministic;
        Alcotest.test_case "fetch stall sampling" `Quick test_fetch_stall_sampling;
        Alcotest.test_case "rack: acquire_wait accounting" `Quick
          test_rack_acquire_wait;
        Alcotest.test_case "rack: page-server pooling" `Quick test_rack_pooling;
        Alcotest.test_case "rack: striping and validation" `Quick
          test_rack_striping_and_validation;
        Alcotest.test_case "pipeline: single chunk degenerates" `Quick
          test_pipeline_single_chunk_degenerates;
        Alcotest.test_case "pipeline: schedule invariants" `Quick
          test_pipeline_invariants;
        Alcotest.test_case "pipeline: rejects garbage" `Quick
          test_pipeline_rejects_garbage ] ) ]
