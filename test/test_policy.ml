open Dapper_isa
open Dapper_machine
open Dapper_clite
open Dapper
open Cl
module Link = Dapper_codegen.Link

let check = Alcotest.check

(* Two versions of a program: v2 changes step()'s arithmetic, with the
   same code shape so the linker layout stays compatible. *)
let versioned step_body =
  let m = create "updatable" in
  Cstd.add m;
  func m "step" [ ("x", Dapper_ir.Ir.I64) ] step_body;
  func m "main" [] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (i 400) (fun b ->
          set b "acc" (add (v "acc") (call "step" [ v "k" ])));
      do_ b (call "print_int" [ v "acc" ]);
      do_ b (call "print_nl" []);
      ret b (rem_ (v "acc") (i 251)));
  finish m

let v1 () = versioned (fun b -> ret b (add (v "x") (i 1)))
let v2 () = versioned (fun b -> ret b (add (v "x") (i 5)))

let test_dsu_changes_behavior_mid_run () =
  let c1 = Link.compile ~app:"updatable" (v1 ()) in
  let c2 = Link.compile ~app:"updatable" (v2 ()) in
  List.iter
    (fun arch ->
      let old_bin = Link.binary_for c1 arch in
      let new_bin = Link.binary_for c2 arch in
      check Alcotest.bool "step changed" true
        (List.mem "step" (Dsu.changed_functions ~old_bin ~new_bin));
      let p = Process.load old_bin in
      ignore (Process.run p ~max_instrs:3_000);
      match Dsu.update p ~old_bin ~new_bin with
      | Error e -> Alcotest.fail (Dsu.error_to_string e)
      | Ok q ->
        (match Process.run_to_completion q ~fuel:10_000_000 with
         | Process.Exited_run _ ->
           let out = Process.stdout_contents q in
           (* pure v1: sum(k+1) = 80200; pure v2: sum(k+5) = 81800.
              a mid-run update lands strictly in between *)
           let acc = int_of_string (String.trim out) in
           check Alcotest.bool
             (Printf.sprintf "%s: mixed result %d" (Arch.name arch) acc)
             true
             (acc > 80200 && acc < 81800)
         | _ -> Alcotest.fail "updated process did not finish"))
    Arch.all

let test_dsu_refuses_active_function () =
  (* main itself always sits on the stack; updating it must be refused *)
  let with_main main_extra =
    let m = create "updatable" in
    Cstd.add m;
    func m "step" [ ("x", Dapper_ir.Ir.I64) ] (fun b -> ret b (add (v "x") (i 1)));
    func m "main" [] (fun b ->
        decl b "acc" (i main_extra);
        for_ b "k" (i 0) (i 400) (fun b ->
            set b "acc" (add (v "acc") (call "step" [ v "k" ])));
        ret b (rem_ (v "acc") (i 251)));
    finish m
  in
  let c1 = Link.compile ~app:"updatable" (with_main 0) in
  let c2 = Link.compile ~app:"updatable" (with_main 3) in
  let p = Process.load c1.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:3_000);
  match Dsu.update ~retries:0 p ~old_bin:c1.Link.cp_x86 ~new_bin:c2.Link.cp_x86 with
  | Error (Dapper_util.Dapper_error.Active_function "main") -> ()
  | Error e -> Alcotest.fail (Dsu.error_to_string e)
  | Ok _ -> Alcotest.fail "update of an active function must be refused"

let test_dsu_refuses_layout_change () =
  (* a version that grows a function beyond its padding moves symbols *)
  let big =
    versioned (fun b ->
        decl b "t" (v "x");
        for_ b "j" (i 0) (i 3) (fun b ->
            set b "t" (add (mul (v "t") (i 3)) (bxor (v "t") (i 11))));
        ret b (add (v "t") (i 1)))
  in
  let c1 = Link.compile ~app:"updatable" (v1 ()) in
  let c2 = Link.compile ~app:"updatable" big in
  let p = Process.load c1.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:3_000);
  match Dsu.update p ~old_bin:c1.Link.cp_x86 ~new_bin:c2.Link.cp_x86 with
  | Error (Dapper_util.Dapper_error.Layout_incompatible _) -> ()
  | Error e -> Alcotest.fail (Dsu.error_to_string e)
  | Ok _ -> Alcotest.fail "incompatible layout must be refused"

let test_policy_identity_and_cross_isa () =
  let c = Registry_helpers.compute () in
  let expected_code, expected_out =
    let p = Process.load c.Link.cp_arm in
    match Process.run_to_completion p ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | _ -> Alcotest.fail "native run failed"
  in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:200_000);
  (* identity first, then cross-ISA, chained through Policy *)
  match Policy.apply p ~current:c.Link.cp_x86 Policy.Identity with
  | Error e -> Alcotest.fail (Policy.error_to_string e)
  | Ok st1 ->
    ignore (Process.run st1.ap_process ~max_instrs:100_000);
    (match Policy.apply st1.ap_process ~current:st1.ap_binary
             (Policy.Cross_isa c.Link.cp_arm) with
     | Error e -> Alcotest.fail (Policy.error_to_string e)
     | Ok st2 ->
       (match Process.run_to_completion st2.ap_process ~fuel:50_000_000 with
        | Process.Exited_run v ->
          check Alcotest.bool "exit equal" true (Int64.equal v expected_code);
          check Alcotest.string "output equal" expected_out
            (Process.stdout_contents p
             ^ Process.stdout_contents st1.ap_process
             ^ Process.stdout_contents st2.ap_process)
        | _ -> Alcotest.fail "chained run failed"))

let test_policy_periodic_rerandomization () =
  let c = Registry_helpers.compute () in
  let expected_code, expected_out =
    let p = Process.load c.Link.cp_x86 in
    match Process.run_to_completion p ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | _ -> Alcotest.fail "native run failed"
  in
  let p = Process.load c.Link.cp_x86 in
  let rng = Dapper_util.Rng.create 404L in
  match
    Policy.rerandomize_periodically p ~current:c.Link.cp_x86 ~rng ~interval:150_000
      ~epochs:4
  with
  | Error e -> Alcotest.fail (Policy.error_to_string e)
  | Ok (final, epochs) ->
    check Alcotest.bool "several epochs ran" true (epochs >= 2);
    check Alcotest.bool "binary actually changed" true
      (final.ap_binary != c.Link.cp_x86);
    let collect = Buffer.create 64 in
    Buffer.add_string collect (Process.stdout_contents p);
    (* note: intermediate processes' output is accumulated by the caller
       in a real deployment; here only first and final hold output *)
    (match Process.run_to_completion final.ap_process ~fuel:50_000_000 with
     | Process.Exited_run v ->
       check Alcotest.bool "exit preserved" true (Int64.equal v expected_code);
       ignore expected_out;
       ignore collect
     | Process.Crashed _ | Process.Idle | Process.Progress ->
       Alcotest.fail "re-randomized process failed")

let suites =
  [ ( "policy-dsu",
      [ Alcotest.test_case "dsu mid-run update" `Quick test_dsu_changes_behavior_mid_run;
        Alcotest.test_case "dsu refuses active function" `Quick test_dsu_refuses_active_function;
        Alcotest.test_case "dsu refuses layout change" `Quick test_dsu_refuses_layout_change;
        Alcotest.test_case "policy identity+cross-isa chain" `Quick
          test_policy_identity_and_cross_isa;
        Alcotest.test_case "policy periodic rerandomization" `Quick
          test_policy_periodic_rerandomization ] ) ]
