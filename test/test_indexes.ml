(* The indexed recode pipeline must be invisible: every Stackmap_index
   and Interval_map lookup returns exactly what the linear scan it
   replaced would have, and a fully indexed migration stays
   deterministic down to the image bytes. *)

open Dapper_binary
module Link = Dapper_codegen.Link

let check = Alcotest.check

(* ----- random stack maps ----- *)

let gen_lv_key =
  QCheck.Gen.(
    oneof
      [ map (fun i -> Stackmap.Slot i) (int_range 0 15);
        map (fun i -> Stackmap.Temp i) (int_range 0 15) ])

let gen_ty = QCheck.Gen.oneofl [ Stackmap.Lv_i64; Stackmap.Lv_f64; Stackmap.Lv_ptr ]

let gen_loc =
  QCheck.Gen.(
    oneof
      [ map (fun r -> Stackmap.Reg r) (int_range 0 30);
        map (fun o -> Stackmap.Frame (-8 * o)) (int_range 1 32) ])

(* Names drawn from a tiny alphabet so duplicate-name lookups get
   exercised. *)
let gen_lv_name = QCheck.Gen.oneofl [ "a"; "b"; "c"; "x"; "tmp" ]

let gen_live =
  QCheck.Gen.(
    gen_lv_key >>= fun lv_key ->
    gen_lv_name >>= fun lv_name ->
    gen_ty >>= fun lv_ty ->
    oneofl [ 8; 16; 24 ] >>= fun lv_size ->
    gen_loc >>= fun lv_loc ->
    return { Stackmap.lv_key; lv_name; lv_ty; lv_size; lv_loc })

let gen_kind =
  QCheck.Gen.(
    oneof
      [ return Stackmap.Entry;
        map (fun n -> Stackmap.Call_site { cs_nargs = n }) (int_range 0 6);
        return Stackmap.Backedge ])

(* ep ids are unique within a function (a stack-map invariant the
   codegen maintains); gaps and ordering are arbitrary. *)
let gen_eqpoint base_addr i =
  QCheck.Gen.(
    int_range 0 1 >>= fun gap ->
    gen_kind >>= fun ep_kind ->
    int_range 0 200 >>= fun off ->
    int_range 1 8 >>= fun resume_off ->
    list_size (int_range 0 5) gen_live >>= fun ep_live ->
    let ep_addr = Int64.add base_addr (Int64.of_int off) in
    return
      { Stackmap.ep_id = (2 * i) + gap; ep_kind; ep_addr;
        ep_resume = Int64.add ep_addr (Int64.of_int resume_off); ep_live })

let gen_func_map index base_addr =
  QCheck.Gen.(
    int_range 0 3 >>= fun name_pick ->
    int_range 32 256 >>= fun fm_code_size ->
    int_range 0 30 >>= fun frame_slots ->
    bool >>= fun fm_leaf ->
    int_range 0 6 >>= fun neps ->
    List.fold_left
      (fun acc i ->
        acc >>= fun eps ->
        gen_eqpoint base_addr i >>= fun ep -> return (ep :: eps))
      (return []) (List.init neps Fun.id)
    >>= fun eqpoints ->
    ignore index;
    return
      { Stackmap.fm_name = Printf.sprintf "f%d" name_pick;
        fm_addr = base_addr; fm_code_size; fm_frame_size = 8 * frame_slots;
        fm_saved = []; fm_promoted = []; fm_leaf;
        fm_eqpoints = List.rev eqpoints })

(* Function address ranges are non-overlapping and increasing, as in a
   real text section. *)
let gen_maps =
  QCheck.Gen.(
    int_range 1 8 >>= fun nfuncs ->
    let rec go i addr acc =
      if i >= nfuncs then return (List.rev acc)
      else
        gen_func_map i addr >>= fun fm ->
        int_range 0 64 >>= fun gap ->
        go (i + 1)
          (Int64.add addr (Int64.of_int (fm.Stackmap.fm_code_size + gap)))
          (fm :: acc)
    in
    go 0 0x40_0000L [])

let arb_maps = QCheck.make ~print:(fun maps -> string_of_int (List.length maps)) gen_maps

(* ----- linear reference lookups ----- *)

let lin_eqpoint_by_id maps fn id =
  Option.bind (Stackmap.find_func maps fn) (fun fm -> Stackmap.eqpoint_by_id fm id)

let lin_eqpoint_by_resume maps fn a =
  Option.bind (Stackmap.find_func maps fn) (fun fm -> Stackmap.eqpoint_by_resume fm a)

let lin_eqpoint_at_addr maps fn a =
  Option.bind (Stackmap.find_func maps fn) (fun (fm : Stackmap.func_map) ->
      List.find_opt (fun (ep : Stackmap.eqpoint) -> Int64.equal ep.ep_addr a) fm.fm_eqpoints)

let lin_entry_eqpoint maps fn =
  Option.bind (Stackmap.find_func maps fn) (fun (fm : Stackmap.func_map) ->
      List.find_opt (fun (ep : Stackmap.eqpoint) -> ep.ep_kind = Stackmap.Entry)
        fm.fm_eqpoints)

let lin_live_value maps fn id key =
  Option.bind (lin_eqpoint_by_id maps fn id) (fun (ep : Stackmap.eqpoint) ->
      List.find_opt (fun (lv : Stackmap.live_value) -> lv.lv_key = key) ep.ep_live)

let lin_live_value_named maps fn id name =
  Option.bind (lin_eqpoint_by_id maps fn id) (fun (ep : Stackmap.eqpoint) ->
      List.find_opt (fun (lv : Stackmap.live_value) -> lv.lv_name = name) ep.ep_live)

let lin_func_of_addr = Stackmap.func_of_addr

let qcheck_stackmap_index_equiv =
  QCheck.Test.make ~name:"Stackmap_index lookups equal linear scans" ~count:100
    arb_maps
    (fun maps ->
      let ix = Stackmap_index.build maps in
      let names =
        "missing"
        :: List.map (fun (fm : Stackmap.func_map) -> fm.fm_name) maps
      in
      let ids = List.init 14 Fun.id in
      let addrs =
        List.concat_map
          (fun (fm : Stackmap.func_map) ->
            let ep_addrs =
              List.concat_map
                (fun (ep : Stackmap.eqpoint) -> [ ep.ep_addr; ep.ep_resume ])
                fm.fm_eqpoints
            in
            [ Int64.sub fm.fm_addr 1L; fm.fm_addr;
              Int64.add fm.fm_addr (Int64.of_int (fm.fm_code_size / 2));
              Int64.add fm.fm_addr (Int64.of_int fm.fm_code_size) ]
            @ ep_addrs)
          maps
        @ [ 0L; 0x40_0000L; Int64.max_int ]
      in
      let keys =
        List.concat_map (fun i -> [ Stackmap.Slot i; Stackmap.Temp i ]) (List.init 6 Fun.id)
      in
      let lv_names = [ "a"; "b"; "c"; "x"; "tmp"; "nope" ] in
      List.for_all
        (fun fn ->
          Stackmap_index.find_func ix fn = Stackmap.find_func maps fn
          && Stackmap_index.entry_eqpoint ix fn = lin_entry_eqpoint maps fn
          && List.for_all
               (fun id ->
                 Stackmap_index.eqpoint_by_id ix fn id = lin_eqpoint_by_id maps fn id
                 && List.for_all
                      (fun key ->
                        Stackmap_index.live_value ix fn id key
                        = lin_live_value maps fn id key)
                      keys
                 && List.for_all
                      (fun n ->
                        Stackmap_index.live_value_named ix fn id n
                        = lin_live_value_named maps fn id n)
                      lv_names)
               ids
          && List.for_all
               (fun a ->
                 Stackmap_index.eqpoint_by_resume ix fn a
                 = lin_eqpoint_by_resume maps fn a
                 && Stackmap_index.eqpoint_at_addr ix fn a
                    = lin_eqpoint_at_addr maps fn a)
               addrs)
        names
      && List.for_all
           (fun a -> Stackmap_index.func_of_addr ix a = lin_func_of_addr maps a)
           addrs)

let qcheck_stackmap_serialize_roundtrip =
  QCheck.Test.make ~name:"stackmap serialize/deserialize roundtrip" ~count:100
    arb_maps
    (fun maps -> Stackmap.deserialize (Stackmap.serialize maps) = maps)

(* ----- interval map vs linear scan ----- *)

(* Disjoint interval sets built by accumulating positive gaps/widths. *)
let gen_intervals =
  QCheck.Gen.(
    list_size (int_range 0 40) (pair (int_range 0 100) (int_range 1 64))
    >>= fun spec ->
    let _, intervals =
      List.fold_left
        (fun (cursor, acc) (gap, width) ->
          let lo = Int64.of_int (cursor + gap) in
          let hi = Int64.add lo (Int64.of_int width) in
          (cursor + gap + width, (lo, hi, cursor) :: acc))
        (0, []) spec
    in
    (* present the list in reverse order: of_list must sort *)
    return intervals)

let arb_intervals =
  QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen_intervals

let qcheck_interval_map_equiv =
  QCheck.Test.make ~name:"Interval_map.find equals linear first-match scan"
    ~count:200
    QCheck.(pair arb_intervals (small_list (int_range 0 8000)))
    (fun (intervals, extra) ->
      let m = Dapper_util.Interval_map.of_list intervals in
      Dapper_util.Interval_map.disjoint m
      && Dapper_util.Interval_map.cardinal m = List.length intervals
      && begin
        let queries =
          List.map Int64.of_int extra
          @ List.concat_map
              (fun (lo, hi, _) -> [ Int64.pred lo; lo; Int64.pred hi; hi ])
              intervals
        in
        List.for_all
          (fun v ->
            let linear =
              List.find_opt
                (fun (lo, hi, _) ->
                  Int64.compare v lo >= 0 && Int64.compare v hi < 0)
                intervals
            in
            Dapper_util.Interval_map.find_interval m v = linear
            && Dapper_util.Interval_map.find m v
               = Option.map (fun (_, _, p) -> p) linear)
          queries
      end)

let test_interval_map_overlap_detected () =
  let m = Dapper_util.Interval_map.of_list [ (0L, 10L, "a"); (5L, 15L, "b") ] in
  check Alcotest.bool "overlap flagged" false (Dapper_util.Interval_map.disjoint m);
  let adjacent = Dapper_util.Interval_map.of_list [ (0L, 10L, "a"); (10L, 15L, "b") ] in
  check Alcotest.bool "adjacent is disjoint" true
    (Dapper_util.Interval_map.disjoint adjacent);
  check Alcotest.bool "empty find" true
    (Dapper_util.Interval_map.find Dapper_util.Interval_map.empty 3L = None)

(* Migration determinism (byte-identical images + stats over repeated
   rewrites) moved to the session suite, which drives it through the
   conformance oracle at a chosen equivalence point. *)

(* ----- content-keyed index memoization ----- *)

let test_index_memo_by_content () =
  let c = Registry_helpers.compute () in
  let maps = c.Link.cp_x86.Dapper_binary.Binary.bin_stackmaps in
  let ix1 = Stackmap_index.get maps in
  (* same list value: physical-equality fast path *)
  let ix2 = Stackmap_index.get maps in
  check Alcotest.bool "same list is memoized" true (ix1 == ix2);
  (* structurally equal but physically distinct: content-hash hit *)
  let copy =
    Dapper_binary.Stackmap.deserialize (Dapper_binary.Stackmap.serialize maps)
  in
  check Alcotest.bool "copy is not the same value" false (maps == copy);
  let ix3 = Stackmap_index.get copy in
  check Alcotest.bool "equal content is memoized" true (ix1 == ix3)

let suites =
  [ ( "indexes",
      [ QCheck_alcotest.to_alcotest qcheck_stackmap_index_equiv;
        QCheck_alcotest.to_alcotest qcheck_stackmap_serialize_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_interval_map_equiv;
        Alcotest.test_case "interval map overlap handling" `Quick
          test_interval_map_overlap_detected;
        Alcotest.test_case "index memoized by stack-map content" `Quick
          test_index_memo_by_content ] ) ]
