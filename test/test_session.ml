open Dapper_machine
open Dapper_net
open Dapper
module Link = Dapper_codegen.Link
module Netlink = Dapper_net.Link
module Derr = Dapper_util.Dapper_error
module Fault = Dapper_util.Fault
module Oracle = Dapper_verify.Oracle

let check = Alcotest.check

let config_for c =
  Session.default_config ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm

(* A program whose main sits in a long call-free loop: no equivalence
   point is ever reached, so any pause budget is exhausted. *)
let callfree () =
  let open Dapper_clite.Cl in
  let m = create "callfree" in
  Dapper_clite.Cstd.add m;
  func m "main" [] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (i 3_000_000) (fun b ->
          set b "acc" (add (v "acc") (band (v "k") (i 7))));
      ret b (rem_ (v "acc") (i 97)));
  Link.compile ~app:"callfree" (finish m)

let test_run_happy_path () =
  let c = Registry_helpers.compute () in
  let expected_code, expected_out =
    let p = Process.load c.Link.cp_arm in
    match Process.run_to_completion p ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | _ -> Alcotest.fail "native run failed"
  in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  match Session.run (config_for c) p with
  | Error e -> Alcotest.fail (Derr.to_string e)
  | Ok st ->
    let stages = List.map (fun r -> r.Session.sr_stage) (Session.stage_log st) in
    check
      Alcotest.(list string)
      "all six stages in order"
      [ "pause"; "dump"; "recode"; "transfer"; "restore"; "commit" ]
      (List.map Derr.stage_name stages);
    List.iter
      (fun r ->
        check Alcotest.bool
          (Derr.stage_name r.Session.sr_stage ^ " cost non-negative")
          true (r.Session.sr_ms >= 0.0))
      (Session.stage_log st);
    let t = Session.times st in
    check Alcotest.bool "total is the sum of stage records" true
      (abs_float
         (Session.total_ms t
          -. List.fold_left (fun a r -> a +. r.Session.sr_ms) 0.0 (Session.stage_log st))
       < 1e-9);
    let r = Session.finish st in
    (match Process.run_to_completion r.Session.r_process ~fuel:50_000_000 with
     | Process.Exited_run v ->
       check Alcotest.bool "exit equal" true (Int64.equal v expected_code);
       check Alcotest.string "out equal" expected_out
         (Process.stdout_contents p ^ Process.stdout_contents r.Session.r_process)
     | _ -> Alcotest.fail "migrated run did not finish")

let test_pause_budget_exhaustion_resumes_source () =
  let c = callfree () in
  let expected =
    let p = Process.load c.Link.cp_x86 in
    match Process.run_to_completion p ~fuel:100_000_000 with
    | Process.Exited_run v -> v
    | _ -> Alcotest.fail "native callfree failed"
  in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:10_000);
  let cfg = { (config_for c) with Session.cfg_pause_budget = 200_000 } in
  (match Session.run cfg p with
   | Error Derr.Pause_budget_exhausted -> ()
   | Error e -> Alcotest.fail (Derr.to_string e)
   | Ok _ -> Alcotest.fail "call-free loop should not be pausable");
  check Alcotest.bool "error is transient" true
    (Derr.retriable Derr.Pause_budget_exhausted);
  (* the failed session must leave the source runnable, not parked *)
  check Alcotest.bool "source resumed after failure" true
    (not (Process.all_quiescent p));
  match Process.run_to_completion p ~fuel:100_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "source completes correctly" true (Int64.equal v expected)
  | _ -> Alcotest.fail "source did not finish after failed session"

let test_stage_failure_resumes_source () =
  (* a recode against the wrong application fails mid-pipeline; the
     source must be resumed, not left stuck at its equivalence points *)
  let c = Registry_helpers.compute () in
  let other = Registry_helpers.other_app () in
  let expected_code, expected_out =
    let p = Process.load c.Link.cp_x86 in
    match Process.run_to_completion p ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | _ -> Alcotest.fail "native run failed"
  in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let cfg =
    Session.default_config ~src_bin:c.Link.cp_x86 ~dst_bin:other.Link.cp_arm
  in
  (match Session.run cfg p with
   | Error (Derr.Recode_failed _) -> ()
   | Error e -> Alcotest.fail ("unexpected error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "recode against the wrong app must fail");
  check Alcotest.bool "source resumed after recode failure" true
    (not (Process.all_quiescent p));
  match Process.run_to_completion p ~fuel:50_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "exit preserved" true (Int64.equal v expected_code);
    check Alcotest.string "output preserved" expected_out (Process.stdout_contents p)
  | _ -> Alcotest.fail "source did not finish after failed session"

let test_stepwise_typed_pipeline () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let s = Session.start (config_for c) p in
  check Alcotest.int "fresh session has an empty log" 0
    (List.length (Session.stage_log s));
  let unwrap = function Ok v -> v | Error e -> Alcotest.fail (Derr.to_string e) in
  let s = unwrap (Session.pause s) in
  check Alcotest.bool "paused source is quiescent" true (Process.all_quiescent p);
  let s = unwrap (Session.dump s) in
  let s = unwrap (Session.recode s) in
  check Alcotest.int "three stages logged" 3 (List.length (Session.stage_log s));
  let s = unwrap (Session.transfer s) in
  let s = unwrap (Session.restore s) in
  let s = unwrap (Session.commit s) in
  let t = Session.times s in
  check Alcotest.bool "every phase has a positive cost" true
    (t.Session.t_checkpoint_ms > 0.0 && t.Session.t_recode_ms > 0.0
     && t.Session.t_scp_ms > 0.0 && t.Session.t_restore_ms > 0.0);
  (* the stepwise drive and the packaged outcome agree *)
  let r = Session.finish s in
  check Alcotest.bool "finish reuses the log" true
    (Session.total_ms r.Session.r_times = Session.total_ms t)

let test_retry_combinator () =
  let calls = ref 0 and breathers = ref 0 in
  let flaky () =
    incr calls;
    if !calls < 3 then Error Derr.Pause_budget_exhausted else Ok !calls
  in
  (match
     Session.retry ~attempts:5 ~before_retry:(fun () -> incr breathers) flaky
   with
   | Ok 3 -> ()
   | Ok n -> Alcotest.fail (Printf.sprintf "expected success on attempt 3, got %d" n)
   | Error e -> Alcotest.fail (Derr.to_string e));
  check Alcotest.int "two breathers between three attempts" 2 !breathers;
  (* a structural error is not retried *)
  let calls = ref 0 in
  let broken () =
    incr calls;
    Error (Derr.Dump_failed "broken")
  in
  (match Session.retry ~attempts:5 broken with
   | Error (Derr.Dump_failed _) -> ()
   | _ -> Alcotest.fail "structural error must not be retried");
  check Alcotest.int "single attempt for structural error" 1 !calls;
  (* the budget is exhausted eventually *)
  let tired () = Error Derr.Pause_budget_exhausted in
  match Session.retry ~attempts:3 tired with
  | Error Derr.Pause_budget_exhausted -> ()
  | _ -> Alcotest.fail "exhausted retries must surface the last error"

let test_transport_costs () =
  let scp = Transport.scp Netlink.infiniband in
  check Alcotest.bool "scp is eager" true (not (Transport.is_lazy scp));
  let lazy_t = Transport.page_server Netlink.infiniband in
  check Alcotest.bool "page server is lazy" true (Transport.is_lazy lazy_t);
  let bytes = 1 lsl 20 in
  check Alcotest.bool "transfer cost matches the raw link" true
    (Transport.transfer_ns scp bytes = Netlink.transfer_ns Netlink.infiniband bytes);
  let slow = Transport.degraded ~factor:3.0 scp in
  check Alcotest.bool "degraded transport is slower" true
    (Transport.transfer_ns slow bytes = 3.0 *. Transport.transfer_ns scp bytes);
  check Alcotest.bool "degradation composes" true
    (Transport.transfer_ns (Transport.degraded ~factor:2.0 slow) bytes
     = 6.0 *. Transport.transfer_ns scp bytes);
  check Alcotest.bool "a speedup is not a degradation" true
    (match Transport.degraded ~factor:0.5 scp with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check Alcotest.bool "eager transports cannot serve pages" true
    (match
       Transport.serve_pages scp (Transport.fresh_page_stats ()) ~page_bytes:4096
         (fun _ -> None)
     with
     | exception Invalid_argument _ -> true
     | source -> ignore (source 0); false);
  (* page-server accounting: every served page is counted and billed *)
  let stats = Transport.fresh_page_stats () in
  let source =
    Transport.serve_pages lazy_t stats ~page_bytes:4096 (fun pn ->
        if pn mod 2 = 0 then Some (Bytes.create 4096) else None)
  in
  ignore (source 0);
  ignore (source 1);
  ignore (source 2);
  check Alcotest.int "only present pages counted" 2 stats.Transport.srv_pages;
  check Alcotest.bool "serving time accumulated" true (stats.Transport.srv_ns > 0.0)

(* ----- two-phase commit ----- *)

(* The native ground truth for the compute program on its source ISA. *)
let native_x86 c =
  let p = Process.load c.Link.cp_x86 in
  match Process.run_to_completion p ~fuel:50_000_000 with
  | Process.Exited_run v -> (v, Process.stdout_contents p)
  | _ -> Alcotest.fail "native run failed"

(* After a rollback the source must be running and oracle-identical to
   an unmigrated twin: same exit code, same output. *)
let assert_source_unharmed ~what p (expected_code, expected_out) =
  check Alcotest.bool (what ^ ": source resumed") true
    (not (Process.all_quiescent p));
  match Process.run_to_completion p ~fuel:50_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool (what ^ ": exit preserved") true (Int64.equal v expected_code);
    check Alcotest.string (what ^ ": output preserved") expected_out
      (Process.stdout_contents p)
  | _ -> Alcotest.fail (what ^ ": source did not finish")

let test_injected_destination_failure_rolls_back () =
  let c = Registry_helpers.compute () in
  let expected = native_x86 c in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let cfg =
    { (config_for c) with
      Session.cfg_fault =
        Some (Fault.make ~seed:11 { Fault.calm with Fault.fs_fail_restore = 1.0 }) }
  in
  (match Session.run cfg p with
   | Error (Derr.Restore_failed _) -> ()
   | Error e -> Alcotest.fail ("unexpected error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "a dead destination cannot be restored to");
  assert_source_unharmed ~what:"destination failure" p expected

let test_transfer_fault_rolls_back () =
  let c = Registry_helpers.compute () in
  let expected = native_x86 c in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let cfg =
    { (config_for c) with
      Session.cfg_fault =
        Some (Fault.make ~seed:12 { Fault.calm with Fault.fs_drop = 1.0 }) }
  in
  (match Session.run cfg p with
   | Error (Derr.Transfer_timeout _ as e) ->
     check Alcotest.bool "timeout is retriable" true (Derr.retriable e)
   | Error e -> Alcotest.fail ("unexpected error: " ^ Derr.to_string e)
   | Ok _ -> Alcotest.fail "a fully dropped transfer cannot complete");
  assert_source_unharmed ~what:"transfer fault" p expected

(* Abandon a stepwise session after each of pause/dump/recode/transfer:
   rollback at every stage boundary must leave the source running and
   indistinguishable from an unmigrated twin. *)
let test_rollback_at_every_stage_boundary () =
  let c = Registry_helpers.compute () in
  let expected = native_x86 c in
  let unwrap = function Ok v -> v | Error e -> Alcotest.fail (Derr.to_string e) in
  List.iter
    (fun n ->
      let p = Process.load c.Link.cp_x86 in
      ignore (Process.run p ~max_instrs:120_000);
      let s = unwrap (Session.pause (Session.start (config_for c) p)) in
      if n = 1 then Session.rollback s
      else begin
        let s = unwrap (Session.dump s) in
        if n = 2 then Session.rollback s
        else begin
          let s = unwrap (Session.recode s) in
          if n = 3 then Session.rollback s
          else begin
            let s = unwrap (Session.transfer s) in
            Session.rollback s
          end
        end
      end;
      assert_source_unharmed ~what:(Printf.sprintf "boundary %d" n) p expected)
    [ 1; 2; 3; 4 ]

let lazy_config c =
  { (config_for c) with
    Session.cfg_transport = Transport.page_server Netlink.infiniband }

let test_commit_drain () =
  let c = Registry_helpers.compute () in
  let expected_code, expected_out =
    let p = Process.load c.Link.cp_arm in
    match Process.run_to_completion p ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | _ -> Alcotest.fail "native run failed"
  in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let prefix = Process.stdout_contents p in
  let cfg = { (lazy_config c) with Session.cfg_commit_drain = true } in
  match Session.run cfg p with
  | Error e -> Alcotest.fail (Derr.to_string e)
  | Ok st ->
    let r = Session.finish st in
    check Alcotest.bool "pages were drained at commit" true (r.Session.r_drained > 0);
    let stats = Option.get r.Session.r_page_server in
    check Alcotest.bool "drain accounted to the page server" true
      (stats.Transport.srv_pages >= r.Session.r_drained);
    let before = stats.Transport.srv_pages in
    (match Process.run_to_completion r.Session.r_process ~fuel:50_000_000 with
     | Process.Exited_run v ->
       check Alcotest.bool "exit equal" true (Int64.equal v expected_code);
       check Alcotest.string "out equal" expected_out
         (prefix ^ Process.stdout_contents r.Session.r_process)
     | _ -> Alcotest.fail "drained destination did not finish");
    (* fully drained: running the destination needs no more source pages *)
    check Alcotest.int "no post-commit demand paging" before stats.Transport.srv_pages

(* Two sequential sessions must not share page-server or transfer
   accounting: counters are allocated per session, so the second
   migration's stats reflect only its own work. *)
let test_stats_fresh_per_session () =
  let c = Registry_helpers.compute () in
  let run_lazy () =
    let p = Process.load c.Link.cp_x86 in
    ignore (Process.run p ~max_instrs:120_000);
    match Session.run (lazy_config c) p with
    | Error e -> Alcotest.fail (Derr.to_string e)
    | Ok st ->
      let r = Session.finish st in
      (match Process.run_to_completion r.Session.r_process ~fuel:50_000_000 with
       | Process.Exited_run _ -> ()
       | _ -> Alcotest.fail "destination did not finish");
      r
  in
  let r1 = run_lazy () in
  let r2 = run_lazy () in
  let s1 = Option.get r1.Session.r_page_server in
  let s2 = Option.get r2.Session.r_page_server in
  check Alcotest.bool "distinct page-server stats records" true (s1 != s2);
  check Alcotest.bool "distinct transfer stats records" true
    (r1.Session.r_transfer != r2.Session.r_transfer);
  check Alcotest.bool "pages were demand-fetched" true (s1.Transport.srv_pages > 0);
  check Alcotest.int "second session starts from zero" s1.Transport.srv_pages
    s2.Transport.srv_pages;
  check Alcotest.int "one transfer attempt each" 1 r1.Session.r_transfer.Transport.tx_attempts;
  check Alcotest.int "no cross-session attempt accumulation" 1
    r2.Session.r_transfer.Transport.tx_attempts

(* ----- forced migration at every equivalence point -----

   The oracle advances a fresh twin to each dynamic equivalence point of
   every example program and drives the full session pipeline there,
   checking the restored process pointwise against the source twin (see
   Dapper_verify.Oracle). One migration per point, both directions. *)

let test_migration_at_every_eqpoint () =
  List.iter
    (fun (name, c) ->
      List.iter
        (fun (src, dst) ->
          match Oracle.run ~src ~dst c with
          | Error f -> Alcotest.fail (Oracle.failure_to_string f)
          | Ok r ->
            check Alcotest.bool (name ^ " walk ran to exit") true r.Oracle.rp_complete;
            check Alcotest.bool (name ^ " has equivalence points") true
              (r.Oracle.rp_points > 0);
            check Alcotest.int
              (name ^ " one migration per point")
              r.Oracle.rp_points r.Oracle.rp_migrations)
        [ (Dapper_isa.Arch.X86_64, Dapper_isa.Arch.Aarch64);
          (Dapper_isa.Arch.Aarch64, Dapper_isa.Arch.X86_64) ])
    (Dapper_verify.Corpus.all ())

(* ----- migration determinism with warm/cold caches -----

   Rewriting the same paused process twice must produce byte-identical
   images and identical cost stats, at a mid-program equivalence point
   of the pointer-heavy example (the worst case for plan caching). *)

let migrate_at_point c point =
  Plan_cache.clear ();
  Dapper_binary.Stackmap_index.reset_counters ();
  let p = Process.load c.Link.cp_x86 in
  if not (Oracle.advance_to_point p ~budget:30_000_000 point) then
    Alcotest.failf "program exited before point %d" point;
  let image = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
  let image', stats =
    Dapper_util.Dapper_error.ok_exn
      (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm)
  in
  (Dapper_criu.Images.to_files image', stats)

let test_migration_deterministic () =
  let c = Option.get (Dapper_verify.Corpus.find "mini-sieve") in
  let files1, stats1 = migrate_at_point c 3 in
  let files2, stats2 = migrate_at_point c 3 in
  check Alcotest.int "same file count" (List.length files1) (List.length files2);
  List.iter2
    (fun (n1, b1) (n2, b2) ->
      check Alcotest.string "file name" n1 n2;
      check Alcotest.bool (n1 ^ " bytes identical") true (String.equal b1 b2))
    files1 files2;
  check Alcotest.bool "stats identical (incl. counters)" true (stats1 = stats2)

(* Plan-cache reuse must not skew the per-run stats: a warm rewrite
   (every plan already cached) reports the same work counters as the
   cold one that populated the cache — cached plans still read concrete
   offsets through the indexes at apply time, so index and interval
   counters are neither skipped on hits nor carried over between runs.
   Only the hit/miss split differs. *)
let test_stats_warm_vs_cold_plan_cache () =
  let c = Option.get (Dapper_verify.Corpus.find "mini-sieve") in
  let rewrite_at point =
    let p = Process.load c.Link.cp_x86 in
    if not (Oracle.advance_to_point p ~budget:30_000_000 point) then
      Alcotest.failf "program exited before point %d" point;
    let image = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
    snd
      (Dapper_util.Dapper_error.ok_exn
         (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm))
  in
  Plan_cache.clear ();
  let cold = rewrite_at 3 in
  let warm = rewrite_at 3 in
  check Alcotest.bool "cold run builds plans" true (cold.Rewrite.st_plan_misses > 0);
  check Alcotest.int "warm run hits every plan"
    (cold.Rewrite.st_plan_hits + cold.Rewrite.st_plan_misses)
    warm.Rewrite.st_plan_hits;
  check Alcotest.int "warm run misses nothing" 0 warm.Rewrite.st_plan_misses;
  check Alcotest.int "index lookups not skipped on cached plans"
    cold.Rewrite.st_index_lookups warm.Rewrite.st_index_lookups;
  check Alcotest.int "interval probes identical"
    cold.Rewrite.st_interval_lookups warm.Rewrite.st_interval_lookups;
  check Alcotest.bool "work counters identical" true
    (cold.Rewrite.st_frames = warm.Rewrite.st_frames
     && cold.Rewrite.st_values = warm.Rewrite.st_values
     && cold.Rewrite.st_ptrs_translated = warm.Rewrite.st_ptrs_translated
     && cold.Rewrite.st_threads = warm.Rewrite.st_threads)

(* ----- pipelined / parallel / incremental recode fast paths -----

   Byte-equivalence of every fast path against the sequential pipeline
   is enforced by the fastpath oracle (lib/verify/oracle.ml, run under
   @conformance); here we pin the cost-model semantics: overlap only
   helps, byte accounting reconciles, workers are clamped, and a warm
   memo shrinks the recode charge. *)

let run_at_point c cfg point =
  let p = Process.load c.Link.cp_x86 in
  if not (Oracle.advance_to_point p ~budget:30_000_000 point) then
    Alcotest.failf "program exited before point %d" point;
  match Session.run cfg p with
  | Error e -> Alcotest.fail (Derr.to_string e)
  | Ok st -> st

let dest_result st =
  let r = Session.finish st in
  match Process.run_to_completion r.Session.r_process ~fuel:50_000_000 with
  | Process.Exited_run v -> (v, Process.stdout_contents r.Session.r_process)
  | _ -> Alcotest.fail "destination did not complete"

let test_pipelined_overlap () =
  let c = Option.get (Dapper_verify.Corpus.find "mini-sieve") in
  let seq = run_at_point c (config_for c) 3 in
  let pipe =
    run_at_point c
      { (config_for c) with Session.cfg_pipeline = true; cfg_chunk_bytes = 4096 }
      3
  in
  let st = Session.times seq and pt = Session.times pipe in
  (* recode is unchanged; only the transfer charge shrinks (the exposed
     tail of the overlap schedule replaces the full sequential wire) *)
  check (Alcotest.float 1e-9) "recode charge unchanged"
    st.Session.t_recode_ms pt.Session.t_recode_ms;
  check Alcotest.bool "pipelined transfer never worse" true
    (pt.Session.t_scp_ms <= st.Session.t_scp_ms +. 1e-9);
  check Alcotest.bool "pipelined total never worse" true
    (Session.total_ms pt <= Session.total_ms st +. 1e-9);
  (* and the destination behaves identically *)
  let sc, so = dest_result seq and pc, po = dest_result pipe in
  check Alcotest.bool "same exit code" true (Int64.equal sc pc);
  check Alcotest.string "same output" so po

let stage_record st name =
  List.find
    (fun x -> Derr.stage_name x.Session.sr_stage = name)
    (Session.stage_log st)

(* Satellite: the recode stage's charged milliseconds must reconcile
   exactly with [Session.recode_ns] applied to the bytes it recorded in
   its own stage record — no silently defaulted byte count. *)
let test_recode_bytes_reconcile () =
  let c = Option.get (Dapper_verify.Corpus.find "mini-sieve") in
  let cfg = config_for c in
  let st = run_at_point c cfg 2 in
  let recode = stage_record st "recode" in
  let dump = stage_record st "dump" in
  let transfer = stage_record st "transfer" in
  let r = Session.finish st in
  check Alcotest.bool "recode charged real bytes" true (recode.Session.sr_bytes > 0);
  let expect =
    Session.recode_ns cfg.Session.cfg_recode_node ~bytes:recode.Session.sr_bytes
      r.Session.r_rewrite
    /. 1e6
  in
  check (Alcotest.float 1e-9) "recode ms = recode_ns over its sr_bytes" expect
    recode.Session.sr_ms;
  (* default config: scale 1.0, no memo — dump charges the source image,
     recode the full rewritten image, the wire what it actually shipped *)
  check Alcotest.bool "dump charged real bytes" true (dump.Session.sr_bytes > 0);
  check Alcotest.int "recode charges the rewritten image (nothing skipped)"
    r.Session.r_image_bytes recode.Session.sr_bytes;
  check Alcotest.bool "transfer charged real bytes" true
    (transfer.Session.sr_bytes > 0);
  List.iter
    (fun x ->
      check Alcotest.bool
        (Derr.stage_name x.Session.sr_stage ^ " bytes non-negative")
        true (x.Session.sr_bytes >= 0))
    (Session.stage_log st)

let test_recode_workers_model () =
  let c = Option.get (Dapper_verify.Corpus.find "mini-sieve") in
  let _, stats = migrate_at_point c 2 in
  let bytes = 10 * 1024 * 1024 in
  let t w = Session.recode_ns Node.xeon ~workers:w ~bytes stats in
  check Alcotest.bool "2 workers beat 1 on a big image" true (t 2 < t 1);
  check Alcotest.bool "4 workers no slower than 2" true (t 4 <= t 2 +. 1e-9);
  check (Alcotest.float 1e-9) "clamped at the node's core count"
    (t Node.xeon.Node.n_cores)
    (t 1024);
  check (Alcotest.float 1e-9) "workers < 1 clamp to sequential" (t 1) (t 0);
  (* perfect-split floor: W workers can never beat work/W *)
  check Alcotest.bool "no superlinear speedup" true
    (t 4 >= t 1 /. 4.0 -. 1e-9)

let test_memo_warm_session () =
  let c = Option.get (Dapper_verify.Corpus.find "mini-sieve") in
  let memo = Plan_cache.create_memo () in
  let cfg = { (config_for c) with Session.cfg_recode_memo = Some memo } in
  let cold = run_at_point c cfg 3 in
  let cold_t = Session.times cold in
  let cr = Session.finish cold in
  let warm = run_at_point c cfg 3 in
  let warm_t = Session.times warm in
  let wr = Session.finish warm in
  let crw = cr.Session.r_rewrite and wrw = wr.Session.r_rewrite in
  check Alcotest.int "cold run hits nothing" 0
    (crw.Rewrite.st_memo_thread_hits + crw.Rewrite.st_memo_page_hits);
  check Alcotest.bool "warm run replays memoized outputs" true
    (wrw.Rewrite.st_memo_thread_hits > 0 && wrw.Rewrite.st_memo_page_hits > 0);
  check Alcotest.bool "warm run skips bytes" true (wrw.Rewrite.st_skipped_bytes > 0);
  check Alcotest.bool "warm recode charge shrinks" true
    (warm_t.Session.t_recode_ms < cold_t.Session.t_recode_ms);
  (* identical destination behavior either way *)
  (match
     ( Process.run_to_completion cr.Session.r_process ~fuel:50_000_000,
       Process.run_to_completion wr.Session.r_process ~fuel:50_000_000 )
   with
   | Process.Exited_run a, Process.Exited_run b ->
     check Alcotest.bool "same exit code" true (Int64.equal a b);
     check Alcotest.string "same output"
       (Process.stdout_contents cr.Session.r_process)
       (Process.stdout_contents wr.Session.r_process)
   | _ -> Alcotest.fail "a destination did not complete")

(* Satellite: scoped plan-cache counters survive a concurrent
   [reset_counters] — the per-run sink tallies every lookup made while
   attached, independent of the process-global counters. *)
let test_scoped_counters_immune_to_reset () =
  let c = Option.get (Dapper_verify.Corpus.find "mini-sieve") in
  let rewrite_once () =
    let p = Process.load c.Link.cp_x86 in
    if not (Oracle.advance_to_point p ~budget:30_000_000 2) then
      Alcotest.fail "program exited before point 2";
    let image = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
    ignore
      (Dapper_util.Dapper_error.ok_exn
         (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm))
  in
  Plan_cache.clear ();
  let sink = Plan_cache.fresh_counters () in
  Plan_cache.attach sink;
  Fun.protect
    ~finally:(fun () -> Plan_cache.detach sink)
    (fun () ->
      rewrite_once ();
      let m1 = sink.Plan_cache.c_misses and h1 = sink.Plan_cache.c_hits in
      check Alcotest.bool "cold misses land in the sink" true (m1 > 0);
      Migrate.reset_run_counters ();
      check Alcotest.int "globals zeroed by the reset hook" 0
        (Plan_cache.hits () + Plan_cache.misses ());
      rewrite_once ();
      check Alcotest.int "sink misses unaffected by the reset" m1
        sink.Plan_cache.c_misses;
      (* warm run hits every plan the cold run built (plus whatever the
         cold run itself re-hit) *)
      check Alcotest.int "sink accumulated across the reset"
        ((2 * h1) + m1)
        sink.Plan_cache.c_hits);
  (* detached: further lookups no longer reach the sink *)
  let snapshot = (sink.Plan_cache.c_hits, sink.Plan_cache.c_misses) in
  rewrite_once ();
  check Alcotest.bool "detached sink frozen" true
    (snapshot = (sink.Plan_cache.c_hits, sink.Plan_cache.c_misses))

(* ----- iterative pre-copy ----- *)

module Fleet = Dapper_cluster.Fleet

let precopy_advance p = fun _ms -> ignore (Process.run p ~max_instrs:20_000)

(* Abandoning a migration after pre-copy rounds must leave the source
   resumable and oracle-identical to an unmigrated twin — pre-copy reads
   pages and tracks writes, it never perturbs execution. The rollback
   here happens mid-pipeline (after dump), the worst spot: tracking was
   on, rounds ran, the pause is live. *)
let test_precopy_rollback_leaves_source_resumable () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let calls = ref 0 in
  let pre =
    Session.precopy (config_for c) p
      ~advance:(fun _ms ->
        incr calls;
        ignore (Process.run p ~max_instrs:20_000))
      ~max_rounds:4 ~downtime_budget_ms:0.0
  in
  check Alcotest.bool "rounds ran" true (List.length pre.Session.pcs_rounds >= 1);
  check Alcotest.bool "tracking disabled after pre-copy" false
    (Memory.tracking_dirty p.Process.mem);
  (* now a real twin: same prefix, same advance budget *)
  let expected =
    let q = Process.load c.Link.cp_x86 in
    ignore (Process.run q ~max_instrs:120_000);
    ignore (Process.run q ~max_instrs:(!calls * 20_000));
    match Process.run_to_completion q ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents q)
    | _ -> Alcotest.fail "twin run failed"
  in
  let unwrap = function Ok v -> v | Error e -> Alcotest.fail (Derr.to_string e) in
  let s = unwrap (Session.pause (Session.start (config_for c) p)) in
  let s = unwrap (Session.dump s) in
  Session.rollback s;
  check Alcotest.bool "source was resumed" true (not (Process.all_quiescent p));
  (* the twin's stdout includes the pre-pause prefix; the source's
     stdout accumulates across pause/rollback, so compare full runs *)
  match Process.run_to_completion p ~fuel:50_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "exit preserved after pre-copy + rollback" true
      (Int64.equal v (fst expected));
    check Alcotest.string "output preserved after pre-copy + rollback"
      (snd expected) (Process.stdout_contents p)
  | _ -> Alcotest.fail "source did not finish after rollback"

(* Pre-copy stats must partition the candidate set, and feeding the
   resident set back as [cfg_resident_pages] must shrink the blackout
   transfer charge relative to an identical vanilla session. *)
let test_precopy_resident_discount () =
  let c = Registry_helpers.compute () in
  let scaled_cfg =
    { (config_for c) with Session.cfg_bytes_scale = 1500.0 }
  in
  let load_twin extra =
    let p = Process.load c.Link.cp_x86 in
    ignore (Process.run p ~max_instrs:120_000);
    if extra > 0 then ignore (Process.run p ~max_instrs:extra);
    p
  in
  let p = load_twin 0 in
  let calls = ref 0 in
  let pre =
    Session.precopy scaled_cfg p
      ~advance:(fun _ms ->
        incr calls;
        ignore (Process.run p ~max_instrs:20_000))
      ~max_rounds:4 ~downtime_budget_ms:0.0
  in
  check Alcotest.bool "some pages settle resident" true
    (pre.Session.pcs_resident <> []);
  check Alcotest.bool "resident and residual disjoint" true
    (List.for_all
       (fun pn -> not (List.mem pn pre.Session.pcs_residual))
       pre.Session.pcs_resident);
  check Alcotest.bool "multiset total covers both sets" true
    (pre.Session.pcs_pages_sent
     >= List.length pre.Session.pcs_resident
        + List.length pre.Session.pcs_residual);
  let run_with cfg q =
    match Session.run cfg q with
    | Ok st -> Session.times st
    | Error e -> Alcotest.fail (Derr.to_string e)
  in
  let hybrid_times =
    run_with
      { scaled_cfg with Session.cfg_resident_pages = pre.Session.pcs_resident }
      p
  in
  let vanilla_times = run_with scaled_cfg (load_twin (!calls * 20_000)) in
  check Alcotest.bool
    (Printf.sprintf "resident discount shrinks transfer: %.3f < %.3f"
       hybrid_times.Session.t_scp_ms vanilla_times.Session.t_scp_ms)
    true
    (hybrid_times.Session.t_scp_ms < vanilla_times.Session.t_scp_ms)

(* A failed eviction that already charged pre-copy round time to the
   victim's stall ledger settles like any other failed attempt: the
   attempt's own charge is refunded, pre-existing debt survives, and the
   ledger never goes negative (extends the PR-5 settlement rule to
   pre-copy-shaped charges). *)
let test_precopy_stall_ledger_settled () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  let pre =
    Session.precopy (config_for c) p ~advance:(precopy_advance p)
      ~max_rounds:3 ~downtime_budget_ms:0.0
  in
  let charged = pre.Session.pcs_ms in
  check Alcotest.bool "pre-copy charged time" true (charged > 0.0);
  check (Alcotest.float 1e-9) "attempt's pre-copy charge refunded" 25.0
    (Fleet.settle_failed_eviction ~owed_ms:(charged +. 25.0) ~charged_ms:charged);
  check (Alcotest.float 1e-9) "ledger never goes negative" 0.0
    (Fleet.settle_failed_eviction ~owed_ms:(charged /. 2.0) ~charged_ms:charged);
  check (Alcotest.float 1e-9) "full refund settles to zero" 0.0
    (Fleet.settle_failed_eviction ~owed_ms:charged ~charged_ms:charged)

let suites =
  [ ( "session",
      [ Alcotest.test_case "run: happy path + stage log" `Quick test_run_happy_path;
        Alcotest.test_case "pause budget exhaustion resumes source" `Quick
          test_pause_budget_exhaustion_resumes_source;
        Alcotest.test_case "stage failure resumes source" `Quick
          test_stage_failure_resumes_source;
        Alcotest.test_case "stepwise typed pipeline" `Quick test_stepwise_typed_pipeline;
        Alcotest.test_case "retry combinator" `Quick test_retry_combinator;
        Alcotest.test_case "transport costs + accounting" `Quick test_transport_costs;
        Alcotest.test_case "injected destination failure rolls back" `Quick
          test_injected_destination_failure_rolls_back;
        Alcotest.test_case "transfer fault rolls back" `Quick test_transfer_fault_rolls_back;
        Alcotest.test_case "rollback at every stage boundary" `Quick
          test_rollback_at_every_stage_boundary;
        Alcotest.test_case "commit drains outstanding pages" `Quick test_commit_drain;
        Alcotest.test_case "stats fresh per session" `Quick test_stats_fresh_per_session;
        Alcotest.test_case "forced migration at every equivalence point" `Quick
          test_migration_at_every_eqpoint;
        Alcotest.test_case "migration deterministic (images + cost stats)" `Quick
          test_migration_deterministic;
        Alcotest.test_case "stats identical warm vs cold plan cache" `Quick
          test_stats_warm_vs_cold_plan_cache;
        Alcotest.test_case "pipelined transfer overlaps recode" `Quick
          test_pipelined_overlap;
        Alcotest.test_case "recode bytes reconcile with stage record" `Quick
          test_recode_bytes_reconcile;
        Alcotest.test_case "multi-worker recode cost model" `Quick
          test_recode_workers_model;
        Alcotest.test_case "warm memo shrinks recode charge" `Quick
          test_memo_warm_session;
        Alcotest.test_case "scoped counters immune to reset" `Quick
          test_scoped_counters_immune_to_reset;
        Alcotest.test_case "pre-copy rollback leaves source resumable" `Quick
          test_precopy_rollback_leaves_source_resumable;
        Alcotest.test_case "pre-copy resident discount" `Quick
          test_precopy_resident_discount;
        Alcotest.test_case "pre-copy stall ledger settled" `Quick
          test_precopy_stall_ledger_settled ] ) ]
