open Dapper_isa
open Dapper_machine
open Dapper_clite
module Link = Dapper_codegen.Link

let check = Alcotest.check

let run_both ?(fuel = 50_000_000) name src ~code ~out =
  let m = Parse.compile ~name src in
  let compiled = Link.compile ~app:name m in
  List.iter
    (fun arch ->
      let p = Process.load (Link.binary_for compiled arch) in
      match Process.run_to_completion p ~fuel with
      | Process.Exited_run c ->
        check Alcotest.int (Printf.sprintf "%s exit on %s" name (Arch.name arch)) code
          (Int64.to_int c);
        check Alcotest.string (Printf.sprintf "%s out on %s" name (Arch.name arch)) out
          (Process.stdout_contents p)
      | Process.Crashed cr -> Alcotest.fail (name ^ " crashed: " ^ cr.cr_reason)
      | Process.Idle -> Alcotest.fail (name ^ ": deadlock")
      | Process.Progress -> Alcotest.fail (name ^ ": out of fuel"))
    Arch.all

let test_arith_and_control () =
  run_both "arith" {|
    fn collatz(n) {
      var steps = 0;
      while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      return steps;
    }
    fn main() {
      // collatz(27) = 111
      return collatz(27);
    }
  |} ~code:111 ~out:""

let test_floats_and_casts () =
  run_both "floats" {|
    fn hypot(f a, f b) : f {
      return sqrt(a * a + b * b);
    }
    fn main() {
      var f h = hypot(3.0, 4.0);
      print_flt(h);
      print_nl();
      return f2i(h * 10.0);
    }
  |} ~code:50 ~out:"5.000\n"

let test_arrays_pointers_strings () =
  run_both "arrays" {|
    global table[16];
    fn main() {
      arr local[4];
      var k = 0;
      for (k = 0; k < 16; k = k + 1) { table[k] = k * k; }
      local[0] = table[3] + table[4];   // 9 + 16
      var ptr p = &local;
      *p = *p + 1;                       // 26
      var fptr xs = sbrk(8 * 4);
      xs[0] = i2f(*p);
      print("sum=");
      print_int(f2i(xs[0]));
      print_nl();
      return f2i(xs[0]);
    }
  |} ~code:26 ~out:"sum=26\n"

let test_byte_ops () =
  run_both "bytes" {|
    fn main() {
      arr buf[2];
      var k = 0;
      for (k = 0; k < 5; k = k + 1) {
        buf.[k] = 65 + k;     // 'A'..'E'
      }
      print_str(&buf, 5);
      print_nl();
      return buf.[4];
    }
  |} ~code:69 ~out:"ABCDE\n"

let test_threads_and_tls () =
  run_both "threads" {|
    tls myacc;
    global total;
    global mtx;
    fn worker(seed) {
      myacc = 0;
      var k = 0;
      for (k = 0; k < 100; k = k + 1) { myacc = myacc + seed; }
      lock(&mtx);
      total = total + myacc;
      unlock(&mtx);
      return 0;
    }
    fn main() {
      var t1 = spawn(worker, 2);
      var t2 = spawn(worker, 3);
      join(t1);
      join(t2);
      return total;   // 200 + 300
    }
  |} ~code:500 ~out:""

let test_indirect_calls () =
  run_both "icalls" {|
    fn twice(x) { return x * 2; }
    fn thrice(x) { return x * 3; }
    fn main() {
      var ptr fp = twice;
      var a = icall(fp, 10);
      fp = thrice;
      return a + icall(fp, 10);   // 20 + 30
    }
  |} ~code:50 ~out:""

let test_logic_operators () =
  run_both "logic" {|
    fn main() {
      var a = 5;
      var b = 0;
      var r = 0;
      if (a && !b) { r = r + 1; }
      if (a || b) { r = r + 2; }
      if ((a > 3) && (a <= 5)) { r = r + 4; }
      if (a != 5 || b == 0) { r = r + 8; }
      return r + ((1 << 4) | (7 & 12)) + (9 ^ 1);
    }
  |} ~code:(15 + 20 + 8) ~out:""

let test_recursion_and_comments () =
  run_both "rec" {|
    /* multi-line
       comment */
    fn fib(n) {
      if (n <= 1) { return n; }    // base case
      return fib(n - 1) + fib(n - 2);
    }
    fn main() { return fib(15); }
  |} ~code:610 ~out:""

let expect_parse_error src fragment =
  match Parse.compile ~name:"bad" src with
  | exception Parse.Parse_error msg ->
    check Alcotest.bool
      (Printf.sprintf "error %S mentions %S" msg fragment)
      true
      (let n = String.length fragment and h = String.length msg in
       let rec go k = k + n <= h && (String.sub msg k n = fragment || go (k + 1)) in
       go 0)
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_errors () =
  expect_parse_error "fn main() { return undefined_var; }" "unknown identifier";
  expect_parse_error "fn main() { var f x = 1; return 0; }" "initialized with";
  expect_parse_error "fn main() { return 1.5 + 2; }" "not defined on";
  expect_parse_error "fn main() { return nosuchfn(1); }" "unknown function";
  expect_parse_error "fn main() { print_flt(3); return 0; }" "type mismatch";
  expect_parse_error "fn main() { return 1 }" "expected";
  expect_parse_error "fn main() { for (i = 0; j < 3; i = i + 1) {} return 0; }" "counter"

let test_parsed_program_migrates () =
  let src = {|
    global checksum;
    fn mix(x) {
      return ((x * 31) ^ (x >> 3)) % 65536;
    }
    fn main() {
      var acc = 0;
      var k = 0;
      for (k = 0; k < 30000; k = k + 1) {
        acc = (acc + mix(k)) % 1000003;
      }
      checksum = acc;
      print_int(acc);
      print_nl();
      return acc % 251;
    }
  |} in
  let m = Parse.compile ~name:"parsed-mig" src in
  let compiled = Link.compile ~app:"parsed-mig" m in
  let expected_code, expected_out =
    let p = Process.load compiled.Link.cp_arm in
    match Process.run_to_completion p ~fuel:100_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | _ -> Alcotest.fail "native run failed"
  in
  let p = Process.load compiled.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:500_000);
  (match Dapper.Monitor.request_pause p ~budget:30_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Dapper.Monitor.error_to_string e));
  let ok = Dapper_util.Dapper_error.ok_exn in
  let image = ok (Dapper_criu.Dump.dump p) in
  let image', _ =
    ok (Dapper.Rewrite.rewrite image ~src:compiled.Link.cp_x86 ~dst:compiled.Link.cp_arm)
  in
  let q = ok (Dapper_criu.Restore.restore image' compiled.Link.cp_arm) in
  match Process.run_to_completion q ~fuel:100_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "exit equal" true (Int64.equal v expected_code);
    check Alcotest.string "out equal" expected_out
      (Process.stdout_contents p ^ Process.stdout_contents q)
  | _ -> Alcotest.fail "migrated parsed program failed"

let suites =
  [ ( "clite-parser",
      [ Alcotest.test_case "arithmetic + control flow" `Quick test_arith_and_control;
        Alcotest.test_case "floats + casts" `Quick test_floats_and_casts;
        Alcotest.test_case "arrays, pointers, strings" `Quick test_arrays_pointers_strings;
        Alcotest.test_case "byte operations" `Quick test_byte_ops;
        Alcotest.test_case "threads + tls" `Quick test_threads_and_tls;
        Alcotest.test_case "indirect calls" `Quick test_indirect_calls;
        Alcotest.test_case "logic operators" `Quick test_logic_operators;
        Alcotest.test_case "recursion + comments" `Quick test_recursion_and_comments;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "parsed program migrates" `Quick test_parsed_program_migrates ] ) ]
