(* The conformance harness under test: the static stack-map verifier
   must accept every binary we ship and reject every targeted
   corruption, and the migration oracle must hold over the seeded
   generated corpus in both ISA directions. *)

open Dapper_isa
open Dapper_machine
module Link = Dapper_codegen.Link
module Static = Dapper_verify.Static
module Oracle = Dapper_verify.Oracle
module Gen = Dapper_verify.Gen
module Corpus = Dapper_verify.Corpus
module Registry = Dapper_workloads.Registry
module Derr = Dapper_util.Dapper_error

let check = Alcotest.check

let directions = [ (Arch.X86_64, Arch.Aarch64); (Arch.Aarch64, Arch.X86_64) ]

(* -- oracle equivalence over the generated corpus --

   Each seed names one deterministic program (compilation is memoized,
   so qcheck revisiting a seed is cheap). The walked prefix is capped:
   the uncapped every-point sweep lives in the session suite and the
   @conformance alias; here breadth beats depth. *)

let qcheck_oracle_generated =
  QCheck.Test.make ~name:"oracle: generated programs survive forced migration" ~count:200
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 200))
    (fun seed ->
      let c = Gen.compile seed in
      List.for_all
        (fun (src, dst) ->
          match Oracle.run ~max_points:3 ~src ~dst c with
          | Ok r -> r.Oracle.rp_migrations > 0
          | Error f -> QCheck.Test.fail_report (Oracle.failure_to_string f))
        directions)

(* -- the static verifier accepts everything we ship -- *)

let test_static_accepts_seed_binaries () =
  let programs =
    List.map (fun sp -> (sp.Registry.sp_name, Registry.compiled sp)) (Registry.all ())
    @ Corpus.all ()
  in
  check Alcotest.bool "some programs checked" true (List.length programs >= 5);
  List.iter
    (fun (name, c) ->
      match Static.check_compiled c with
      | [] -> ()
      | viols ->
        Alcotest.failf "%s rejected: %s" name
          (Static.violation_to_string (List.hd viols)))
    programs

(* -- and rejects every targeted stack-map corruption -- *)

let test_mutations_rejected () =
  let corrupted =
    Static.corruptions (Option.get (Corpus.find "mini-sieve"))
    @ Static.corruptions (Registry.compiled (Registry.find "nginx"))
  in
  check Alcotest.bool "at least 5 corruptions" true (List.length corrupted >= 5);
  List.iter
    (fun (name, c) ->
      match Static.run c with
      | Error (Derr.Verify_failed msg) ->
        check Alcotest.bool (name ^ " names a location") true
          (String.contains msg ':');
        check Alcotest.bool (name ^ " is terminal") false (Derr.retriable (Derr.Verify_failed msg))
      | Ok () -> Alcotest.failf "corruption %s was not rejected" name
      | Error e ->
        Alcotest.failf "corruption %s rejected with the wrong error: %s" name
          (Derr.to_string e))
    corrupted

(* -- observe is read-only -- *)

let test_observe_read_only () =
  let c = Option.get (Corpus.find "mini-pi") in
  let run_with_observe observe =
    let p = Process.load c.Link.cp_x86 in
    ignore (Process.run p ~max_instrs:50_000);
    if observe then begin
      let s1 = Process.observe p in
      let s2 = Process.observe p in
      check Alcotest.bool "repeated observation is stable" true
        (Process.state_equal s1 s2);
      check Alcotest.string "snapshot renders" (Process.snapshot_to_string s1)
        (Process.snapshot_to_string s2)
    end;
    match Process.run_to_completion p ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | Process.Idle ->
      (* the pre-run already reached exit *)
      (match (Process.observe p).Process.sn_exit with
       | Some v -> (v, Process.stdout_contents p)
       | None -> Alcotest.fail "process idle without exiting")
    | _ -> Alcotest.fail "run did not finish"
  in
  let code_plain, out_plain = run_with_observe false in
  let code_obs, out_obs = run_with_observe true in
  check Alcotest.bool "exit code unchanged by observation" true
    (Int64.equal code_plain code_obs);
  check Alcotest.string "stdout unchanged by observation" out_plain out_obs

let suites =
  [ ( "verify",
      [ QCheck_alcotest.to_alcotest qcheck_oracle_generated;
        Alcotest.test_case "static verifier accepts all seed binaries" `Quick
          test_static_accepts_seed_binaries;
        Alcotest.test_case "corrupted stack maps are rejected" `Quick
          test_mutations_rejected;
        Alcotest.test_case "observe is read-only" `Quick test_observe_read_only ] ) ]
