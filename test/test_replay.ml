(* The record/replay plane: record→replay round-trips byte-identically
   on the same ISA and validates cleanly across ISAs, recording never
   perturbs the execution it observes, and shadow replay localizes an
   injected rewriter corruption to its first diverging anchor. *)

open Dapper_isa
open Dapper_machine
module Link = Dapper_codegen.Link
module Log = Dapper_replay.Log
module Replayer = Dapper_replay.Replayer
module Oracle = Dapper_verify.Oracle
module Corpus = Dapper_verify.Corpus
module Gen = Dapper_verify.Gen

let check = Alcotest.check

let record_exn bin =
  match Replayer.record bin with
  | Ok log -> log
  | Error e -> Alcotest.failf "record failed: %s" e

let replay_exn ~log bin =
  match Replayer.replay ~log bin with
  | Ok o -> o
  | Error d -> Alcotest.failf "replay diverged: %s" (Replayer.divergence_to_string d)

(* One full round-trip battery for a compiled program: record on [src],
   replay same-ISA (the re-recorded log must be byte-identical) and
   cross-ISA (stdout, exit and the final observed state must agree),
   and check the recording against an untapped live run. *)
let round_trip name c =
  List.iter
    (fun src ->
      let src_bin = Link.binary_for c src in
      let dst =
        match src with Arch.X86_64 -> Arch.Aarch64 | Arch.Aarch64 -> Arch.X86_64
      in
      let dst_bin = Link.binary_for c dst in
      let log = record_exn src_bin in
      (* recording is deterministic: same binary, same log, to the byte *)
      check Alcotest.bool
        (name ^ ": re-recording is byte-identical")
        true
        (Log.fingerprint (record_exn src_bin) = Log.fingerprint log);
      (* recording never perturbs the run: an untapped live execution
         produces the same stdout and exit code *)
      let live = Process.load src_bin in
      (match Process.run_to_completion live ~fuel:50_000_000 with
      | Process.Exited_run _ -> ()
      | _ -> Alcotest.failf "%s: live run did not exit" name);
      check Alcotest.string
        (name ^ ": recorded stdout = live stdout")
        (Process.stdout_contents live) log.Log.lg_stdout;
      check Alcotest.bool
        (name ^ ": recorded exit = live exit")
        true
        (Some log.Log.lg_exit = live.Process.exit_code);
      (* same-ISA replay: validated end to end, log reproduced bit for bit *)
      let same = replay_exn ~log src_bin in
      check Alcotest.bool
        (name ^ ": same-ISA replay reproduces the log byte-identically")
        true
        (Log.fingerprint same.Replayer.ro_log = Log.fingerprint log);
      check Alcotest.int
        (name ^ ": same-ISA replay walks every anchor")
        (Log.points log) same.Replayer.ro_points;
      check Alcotest.bool
        (name ^ ": same-ISA scheduler slices checked")
        true
        (same.Replayer.ro_sched_checked > 0);
      (* cross-ISA replay: syscalls validated, schedule skipped, final
         observable state identical (modulo the masked flag word) *)
      let cross = replay_exn ~log dst_bin in
      check Alcotest.string
        (name ^ ": cross-ISA stdout")
        log.Log.lg_stdout cross.Replayer.ro_stdout;
      check Alcotest.bool
        (name ^ ": cross-ISA exit")
        true
        (cross.Replayer.ro_exit = log.Log.lg_exit);
      check Alcotest.int
        (name ^ ": cross-ISA replay walks every anchor")
        (Log.points log) cross.Replayer.ro_points;
      check Alcotest.bool
        (name ^ ": cross-ISA final states observably equal")
        true
        (Process.state_equal (Process.observe live) cross.Replayer.ro_snapshot))
    [ Arch.X86_64; Arch.Aarch64 ]

let test_corpus_round_trips () =
  List.iter (fun (name, c) -> round_trip name c) (Corpus.all ())

(* Each seed names one deterministic generated program (compilation is
   memoized). Recording walks every dynamic equivalence point, so this
   is the full-depth determinism property the capped oracle sweep
   cannot afford per point. *)
let qcheck_generated_round_trip =
  QCheck.Test.make ~count:25
    ~name:"replay: generated programs record/replay round-trip on both ISAs"
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 60))
    (fun seed ->
      let c = Gen.compile seed in
      let log = record_exn c.Link.cp_x86 in
      let same = replay_exn ~log c.Link.cp_x86 in
      let cross = replay_exn ~log c.Link.cp_arm in
      Log.fingerprint same.Replayer.ro_log = Log.fingerprint log
      && cross.Replayer.ro_stdout = log.Log.lg_stdout
      && cross.Replayer.ro_exit = log.Log.lg_exit
      && cross.Replayer.ro_points = Log.points log)

(* The log survives its wire format: encode→decode is the identity on
   the fingerprint, and a flipped body byte is rejected by checksum. *)
let test_log_wire_round_trip () =
  let c = Option.get (Corpus.find "mini-quickstart") in
  let log = record_exn c.Link.cp_x86 in
  let bytes = Log.encode log in
  let back =
    match Log.decode bytes with
    | log' -> log'
    | exception Log.Log_error msg -> Alcotest.failf "decode failed: %s" msg
  in
  check Alcotest.bool "decode(encode log) fingerprints equal" true
    (Log.fingerprint back = Log.fingerprint log);
  let corrupt = Bytes.of_string bytes in
  (* the midpoint lies inside the entry-stream body (the dominant
     field), which is exactly what the checksum covers *)
  let mid = Bytes.length corrupt / 2 in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x01));
  check Alcotest.bool "corrupted image rejected" true
    (match Log.decode (Bytes.to_string corrupt) with
     | exception Log.Log_error _ -> true
     | _ -> false)

(* Shadow replay localizes a seeded rewriter corruption: a clean
   migration's shadow matches, and a byte flipped in the rewritten
   image is pinned to the restore point with the diverging page named. *)
let test_shadow_localizes_corruption () =
  let c = Option.get (Corpus.find "mini-quickstart") in
  match
    Oracle.check_shadow ~max_points:2 ~src:Arch.X86_64 ~dst:Arch.Aarch64 c
  with
  | Error f -> Alcotest.fail (Oracle.failure_to_string f)
  | Ok r ->
    check Alcotest.bool "points exercised" true (r.Oracle.sr_points > 0);
    check Alcotest.int "every clean migration's shadow matched"
      r.Oracle.sr_points r.Oracle.sr_clean;
    check Alcotest.int "every corruption localized"
      r.Oracle.sr_points r.Oracle.sr_corrupted;
    check Alcotest.int "one divergence report per corruption"
      r.Oracle.sr_points (List.length r.Oracle.sr_divergences);
    List.iter
      (fun report ->
        check Alcotest.bool "report names the first diverging anchor" true
          (let contains hay needle =
             let nh = String.length hay and nn = String.length needle in
             let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
             go 0
           in
           contains report "first divergence"))
      r.Oracle.sr_divergences

let suites =
  [ ( "replay",
      [ Alcotest.test_case "corpus record/replay round-trips" `Quick
          test_corpus_round_trips;
        QCheck_alcotest.to_alcotest qcheck_generated_round_trip;
        Alcotest.test_case "log wire-format round-trip + checksum" `Quick
          test_log_wire_round_trip;
        Alcotest.test_case "shadow localizes injected corruption" `Quick
          test_shadow_localizes_corruption ] ) ]
