open Dapper_cluster

let check = Alcotest.check

let kinds =
  [ { Scheduler.jk_name = "cg"; jk_xeon_ms = 9000.0; jk_rpi_ms = 25000.0; jk_migration_ms = 1500.0 };
    { Scheduler.jk_name = "mg"; jk_xeon_ms = 12000.0; jk_rpi_ms = 33000.0; jk_migration_ms = 1800.0 };
    { Scheduler.jk_name = "ep"; jk_xeon_ms = 7000.0; jk_rpi_ms = 20000.0; jk_migration_ms = 1200.0 };
    { Scheduler.jk_name = "ft"; jk_xeon_ms = 5000.0; jk_rpi_ms = 14000.0; jk_migration_ms = 1100.0 } ]

let base_config =
  { Scheduler.c_window_ms = Scheduler.default_window_ms; c_xeon_slots = 7; c_rpis = 0;
    c_rpi_slots_each = 3 }

let test_baseline_sane () =
  let r = Scheduler.run base_config kinds in
  check Alcotest.bool "jobs done" true (r.r_jobs_done > 0);
  check Alcotest.bool "all on xeon" true (r.r_jobs_rpi = 0 && r.r_jobs_xeon = r.r_jobs_done);
  check Alcotest.bool "energy positive" true (r.r_energy_kj > 0.0)

let test_pis_improve_efficiency_and_throughput () =
  let base = Scheduler.run base_config kinds in
  let one = Scheduler.run { base_config with c_rpis = 1 } kinds in
  let three = Scheduler.run { base_config with c_rpis = 3 } kinds in
  check Alcotest.bool "1 pi adds jobs" true (one.r_jobs_done > base.r_jobs_done);
  check Alcotest.bool "3 pis add more jobs" true (three.r_jobs_done > one.r_jobs_done);
  check Alcotest.bool "1 pi improves jobs/kJ" true
    (Scheduler.efficiency_gain_pct ~baseline:base ~subject:one > 0.0);
  check Alcotest.bool "3 pis improve jobs/kJ" true
    (Scheduler.efficiency_gain_pct ~baseline:base ~subject:three > 0.0);
  (* paper's bands: efficiency +15-39%, throughput +37-52% for 3 Pis;
     allow slack around them *)
  let eff3 = Scheduler.efficiency_gain_pct ~baseline:base ~subject:three in
  let thr3 = Scheduler.throughput_gain_pct ~baseline:base ~subject:three in
  check Alcotest.bool (Printf.sprintf "eff3 %.1f%% plausible" eff3) true
    (eff3 > 5.0 && eff3 < 80.0);
  check Alcotest.bool (Printf.sprintf "thr3 %.1f%% plausible" thr3) true
    (thr3 > 15.0 && thr3 < 90.0)

let test_migration_overhead_hurts () =
  let cheap = Scheduler.run { base_config with c_rpis = 1 } kinds in
  let pricey =
    Scheduler.run { base_config with c_rpis = 1 }
      (List.map (fun k -> { k with Scheduler.jk_migration_ms = 20_000.0 }) kinds)
  in
  check Alcotest.bool "higher migration cost, fewer jobs" true
    (pricey.r_jobs_done < cheap.r_jobs_done)

let test_window_scaling () =
  let short = Scheduler.run { base_config with c_window_ms = 60_000.0 } kinds in
  let long = Scheduler.run base_config kinds in
  check Alcotest.bool "longer window, more jobs" true (long.r_jobs_done > short.r_jobs_done)

(* ----- the process-level fleet (real jobs, real migrations) ----- *)

let fleet_config =
  { Fleet.default_config with
    f_window_ms = 14_000.0; f_quantum_ms = 50.0; f_xeon_slots = 3;
    f_rpis = 1; f_rpi_slots_each = 2; f_speed_scale = 4200.0 }

let fleet_jobs () = [ Registry_helpers.compute () ]

let test_fleet_eviction_happens () =
  let st = Fleet.run fleet_config (fleet_jobs ()) in
  check Alcotest.bool "jobs completed" true (st.f_jobs_done > 0);
  check Alcotest.bool "evictions happened" true (st.f_evictions > 0);
  check Alcotest.bool "some jobs finished on the rpi" true (st.f_jobs_done_rpi > 0);
  check Alcotest.bool "migration time accounted" true (st.f_migration_ms_total > 0.0)

let test_fleet_eviction_beats_baseline () =
  let with_evict = Fleet.run fleet_config (fleet_jobs ()) in
  let without = Fleet.run { fleet_config with f_evict = false } (fleet_jobs ()) in
  check Alcotest.bool "throughput improves" true
    (with_evict.f_jobs_done > without.f_jobs_done);
  check Alcotest.bool "efficiency improves" true
    (with_evict.f_jobs_per_kj > without.f_jobs_per_kj)

let test_fleet_edge_configs () =
  (* no Pis and eviction disabled must behave like the xeon-only baseline *)
  let jobs = fleet_jobs () in
  let no_pis = Fleet.run { fleet_config with f_rpis = 0 } jobs in
  check Alcotest.int "no pis, no evictions" 0 no_pis.f_evictions;
  check Alcotest.int "no pis, nothing on rpi" 0 no_pis.f_jobs_done_rpi;
  let no_evict = Fleet.run { fleet_config with f_evict = false } jobs in
  check Alcotest.int "eviction off" 0 no_evict.f_evictions;
  check Alcotest.bool "pis idle but drawing idle power" true
    (no_evict.f_energy_kj > no_pis.f_energy_kj);
  check Alcotest.bool "empty job list rejected" true
    (match Fleet.run fleet_config [] with
     | exception Fleet.Fleet_error _ -> true
     | _ -> false)

let test_fleet_eviction_retries () =
  (* Jobs whose main is one long call-free loop can only be paused at
     the entry checker: evictions attempted mid-loop exhaust the drain
     budget. Such a failure must not lose the job — it keeps running on
     its Xeon slot and the eviction is retried at a later quantum — and
     must be counted as a retry, not a lost eviction. *)
  let callfree =
    let open Dapper_clite.Cl in
    let m = create "callfree" in
    Dapper_clite.Cstd.add m;
    func m "main" [] (fun b ->
        decl b "acc" (i 0);
        for_ b "k" (i 0) (i 30_000) (fun b ->
            set b "acc" (add (v "acc") (band (v "k") (i 7))));
        ret b (rem_ (v "acc") (i 97)));
    Dapper_codegen.Link.compile ~app:"callfree" (finish m)
  in
  let st =
    Fleet.run { fleet_config with Fleet.f_pause_budget = 50_000 } [ callfree ]
  in
  check Alcotest.bool "transient pause failures counted as retries" true
    (st.Fleet.f_eviction_retries > 0);
  check Alcotest.bool "retried jobs are not lost" true (st.Fleet.f_jobs_done > 0);
  (* with a generous budget the same fleet never needs to retry *)
  let easy = Fleet.run fleet_config (fleet_jobs ()) in
  check Alcotest.int "pausable jobs never retry" 0 easy.Fleet.f_eviction_retries

let test_fleet_node_loss () =
  (* every eviction attempt kills its destination node: the fleet loses
     all Pi slots, loses no jobs, and records a recovery per attempt *)
  let jobs = fleet_jobs () in
  let app = (List.hd jobs).Dapper_codegen.Link.cp_app in
  let st =
    Fleet.run
      { fleet_config with
        Fleet.f_fault =
          Some
            (Dapper_util.Fault.make ~seed:1
               { Dapper_util.Fault.calm with Dapper_util.Fault.fs_kill_node = 1.0 }) }
      jobs
  in
  check Alcotest.int "every pi slot dies" (fleet_config.Fleet.f_rpis * fleet_config.Fleet.f_rpi_slots_each)
    st.Fleet.f_nodes_lost;
  check Alcotest.int "dead nodes host no migrations" 0 st.Fleet.f_evictions;
  check Alcotest.bool "jobs still complete on the xeon" true (st.Fleet.f_jobs_done > 0);
  check Alcotest.bool "recoveries charged to the job" true
    (List.mem_assoc app st.Fleet.f_recoveries)

(* A failed eviction settles the victim slot's stall ledger by giving
   back only what the attempt charged — pre-existing stall debt (e.g.
   from an earlier inbound migration onto the slot) must survive. The
   old code zeroed the whole ledger. *)
let test_settle_failed_eviction () =
  check (Alcotest.float 0.0) "pre-existing debt survives a free attempt" 120.0
    (Fleet.settle_failed_eviction ~owed_ms:120.0 ~charged_ms:0.0);
  check (Alcotest.float 0.0) "attempt's own charge is given back" 100.0
    (Fleet.settle_failed_eviction ~owed_ms:130.0 ~charged_ms:30.0);
  check (Alcotest.float 0.0) "never refunds below zero" 0.0
    (Fleet.settle_failed_eviction ~owed_ms:20.0 ~charged_ms:30.0);
  check (Alcotest.float 0.0) "clean ledger stays clean" 0.0
    (Fleet.settle_failed_eviction ~owed_ms:0.0 ~charged_ms:0.0)

let test_fleet_chaos_recovers () =
  (* a flaky but survivable fault plane with a retrying transport: the
     fleet keeps making progress and books every abandoned eviction as a
     per-job recovery *)
  let st =
    Fleet.run
      { fleet_config with
        Fleet.f_transport =
          Dapper_net.Transport.retrying
            (Dapper_net.Transport.scp Dapper_net.Link.infiniband);
        f_fault = Some (Dapper_util.Fault.make ~seed:7 (Dapper_util.Fault.uniform 0.15)) }
      (fleet_jobs ())
  in
  check Alcotest.bool "jobs complete under chaos" true (st.Fleet.f_jobs_done > 0);
  let recovered = List.fold_left (fun a (_, n) -> a + n) 0 st.Fleet.f_recoveries in
  check Alcotest.int "recoveries = retries + structural failures"
    (st.Fleet.f_eviction_retries + st.Fleet.f_eviction_failures)
    recovered

let suites =
  [ ( "cluster",
      [ Alcotest.test_case "baseline sane" `Quick test_baseline_sane;
        Alcotest.test_case "pis improve" `Quick test_pis_improve_efficiency_and_throughput;
        Alcotest.test_case "migration overhead" `Quick test_migration_overhead_hurts;
        Alcotest.test_case "window scaling" `Quick test_window_scaling;
        Alcotest.test_case "fleet: real evictions" `Slow test_fleet_eviction_happens;
        Alcotest.test_case "fleet: eviction beats baseline" `Slow
          test_fleet_eviction_beats_baseline;
        Alcotest.test_case "fleet: edge configurations" `Quick test_fleet_edge_configs;
        Alcotest.test_case "fleet: transient eviction failures retried" `Slow
          test_fleet_eviction_retries;
        Alcotest.test_case "fleet: node loss survived" `Slow test_fleet_node_loss;
        Alcotest.test_case "fleet: failed-eviction stall settlement" `Quick
          test_settle_failed_eviction;
        Alcotest.test_case "fleet: chaos recovery accounting" `Slow
          test_fleet_chaos_recovers ] ) ]
