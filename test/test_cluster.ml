open Dapper_cluster

let check = Alcotest.check

let kinds =
  [ { Scheduler.jk_name = "cg"; jk_xeon_ms = 9000.0; jk_rpi_ms = 25000.0; jk_migration_ms = 1500.0 };
    { Scheduler.jk_name = "mg"; jk_xeon_ms = 12000.0; jk_rpi_ms = 33000.0; jk_migration_ms = 1800.0 };
    { Scheduler.jk_name = "ep"; jk_xeon_ms = 7000.0; jk_rpi_ms = 20000.0; jk_migration_ms = 1200.0 };
    { Scheduler.jk_name = "ft"; jk_xeon_ms = 5000.0; jk_rpi_ms = 14000.0; jk_migration_ms = 1100.0 } ]

let base_config =
  { Scheduler.c_window_ms = Scheduler.default_window_ms; c_xeon_slots = 7; c_rpis = 0;
    c_rpi_slots_each = 3 }

let test_baseline_sane () =
  let r = Scheduler.run base_config kinds in
  check Alcotest.bool "jobs done" true (r.r_jobs_done > 0);
  check Alcotest.bool "all on xeon" true (r.r_jobs_rpi = 0 && r.r_jobs_xeon = r.r_jobs_done);
  check Alcotest.bool "energy positive" true (r.r_energy_kj > 0.0)

let test_pis_improve_efficiency_and_throughput () =
  let base = Scheduler.run base_config kinds in
  let one = Scheduler.run { base_config with c_rpis = 1 } kinds in
  let three = Scheduler.run { base_config with c_rpis = 3 } kinds in
  check Alcotest.bool "1 pi adds jobs" true (one.r_jobs_done > base.r_jobs_done);
  check Alcotest.bool "3 pis add more jobs" true (three.r_jobs_done > one.r_jobs_done);
  check Alcotest.bool "1 pi improves jobs/kJ" true
    (Scheduler.efficiency_gain_pct ~baseline:base ~subject:one > 0.0);
  check Alcotest.bool "3 pis improve jobs/kJ" true
    (Scheduler.efficiency_gain_pct ~baseline:base ~subject:three > 0.0);
  (* paper's bands: efficiency +15-39%, throughput +37-52% for 3 Pis;
     allow slack around them *)
  let eff3 = Scheduler.efficiency_gain_pct ~baseline:base ~subject:three in
  let thr3 = Scheduler.throughput_gain_pct ~baseline:base ~subject:three in
  check Alcotest.bool (Printf.sprintf "eff3 %.1f%% plausible" eff3) true
    (eff3 > 5.0 && eff3 < 80.0);
  check Alcotest.bool (Printf.sprintf "thr3 %.1f%% plausible" thr3) true
    (thr3 > 15.0 && thr3 < 90.0)

let test_migration_overhead_hurts () =
  let cheap = Scheduler.run { base_config with c_rpis = 1 } kinds in
  let pricey =
    Scheduler.run { base_config with c_rpis = 1 }
      (List.map (fun k -> { k with Scheduler.jk_migration_ms = 20_000.0 }) kinds)
  in
  check Alcotest.bool "higher migration cost, fewer jobs" true
    (pricey.r_jobs_done < cheap.r_jobs_done)

let test_window_scaling () =
  let short = Scheduler.run { base_config with c_window_ms = 60_000.0 } kinds in
  let long = Scheduler.run base_config kinds in
  check Alcotest.bool "longer window, more jobs" true (long.r_jobs_done > short.r_jobs_done)

(* ----- the process-level fleet (real jobs, real migrations) ----- *)

let fleet_config =
  { Fleet.default_config with
    f_window_ms = 14_000.0; f_quantum_ms = 50.0; f_xeon_slots = 3;
    f_rpis = 1; f_rpi_slots_each = 2; f_speed_scale = 4200.0 }

let fleet_jobs () = [ Registry_helpers.compute () ]

let test_fleet_eviction_happens () =
  let st = Fleet.run fleet_config (fleet_jobs ()) in
  check Alcotest.bool "jobs completed" true (st.f_jobs_done > 0);
  check Alcotest.bool "evictions happened" true (st.f_evictions > 0);
  check Alcotest.bool "some jobs finished on the rpi" true (st.f_jobs_done_rpi > 0);
  check Alcotest.bool "migration time accounted" true (st.f_migration_ms_total > 0.0)

let test_fleet_eviction_beats_baseline () =
  let with_evict = Fleet.run fleet_config (fleet_jobs ()) in
  let without = Fleet.run { fleet_config with f_evict = false } (fleet_jobs ()) in
  check Alcotest.bool "throughput improves" true
    (with_evict.f_jobs_done > without.f_jobs_done);
  check Alcotest.bool "efficiency improves" true
    (with_evict.f_jobs_per_kj > without.f_jobs_per_kj)

let test_fleet_edge_configs () =
  (* no Pis and eviction disabled must behave like the xeon-only baseline *)
  let jobs = fleet_jobs () in
  let no_pis = Fleet.run { fleet_config with f_rpis = 0 } jobs in
  check Alcotest.int "no pis, no evictions" 0 no_pis.f_evictions;
  check Alcotest.int "no pis, nothing on rpi" 0 no_pis.f_jobs_done_rpi;
  let no_evict = Fleet.run { fleet_config with f_evict = false } jobs in
  check Alcotest.int "eviction off" 0 no_evict.f_evictions;
  check Alcotest.bool "pis idle but drawing idle power" true
    (no_evict.f_energy_kj > no_pis.f_energy_kj);
  check Alcotest.bool "empty job list rejected" true
    (match Fleet.run fleet_config [] with
     | exception Fleet.Fleet_error _ -> true
     | _ -> false)

let test_fleet_eviction_retries () =
  (* Jobs whose main is one long call-free loop can only be paused at
     the entry checker: evictions attempted mid-loop exhaust the drain
     budget. Such a failure must not lose the job — it keeps running on
     its Xeon slot and the eviction is retried at a later quantum — and
     must be counted as a retry, not a lost eviction. *)
  let callfree =
    let open Dapper_clite.Cl in
    let m = create "callfree" in
    Dapper_clite.Cstd.add m;
    func m "main" [] (fun b ->
        decl b "acc" (i 0);
        for_ b "k" (i 0) (i 30_000) (fun b ->
            set b "acc" (add (v "acc") (band (v "k") (i 7))));
        ret b (rem_ (v "acc") (i 97)));
    Dapper_codegen.Link.compile ~app:"callfree" (finish m)
  in
  let st =
    Fleet.run { fleet_config with Fleet.f_pause_budget = 50_000 } [ callfree ]
  in
  check Alcotest.bool "transient pause failures counted as retries" true
    (st.Fleet.f_eviction_retries > 0);
  check Alcotest.bool "retried jobs are not lost" true (st.Fleet.f_jobs_done > 0);
  (* with a generous budget the same fleet never needs to retry *)
  let easy = Fleet.run fleet_config (fleet_jobs ()) in
  check Alcotest.int "pausable jobs never retry" 0 easy.Fleet.f_eviction_retries

let test_fleet_node_loss () =
  (* every eviction attempt kills its destination node: the fleet loses
     all Pi slots, loses no jobs, and records a recovery per attempt *)
  let jobs = fleet_jobs () in
  let app = (List.hd jobs).Dapper_codegen.Link.cp_app in
  let st =
    Fleet.run
      { fleet_config with
        Fleet.f_fault =
          Some
            (Dapper_util.Fault.make ~seed:1
               { Dapper_util.Fault.calm with Dapper_util.Fault.fs_kill_node = 1.0 }) }
      jobs
  in
  check Alcotest.int "every pi slot dies" (fleet_config.Fleet.f_rpis * fleet_config.Fleet.f_rpi_slots_each)
    st.Fleet.f_nodes_lost;
  check Alcotest.int "dead nodes host no migrations" 0 st.Fleet.f_evictions;
  check Alcotest.bool "jobs still complete on the xeon" true (st.Fleet.f_jobs_done > 0);
  check Alcotest.bool "recoveries charged to the job" true
    (List.mem_assoc app st.Fleet.f_recoveries)

(* A failed eviction settles the victim slot's stall ledger by giving
   back only what the attempt charged — pre-existing stall debt (e.g.
   from an earlier inbound migration onto the slot) must survive. The
   old code zeroed the whole ledger. *)
let test_settle_failed_eviction () =
  check (Alcotest.float 0.0) "pre-existing debt survives a free attempt" 120.0
    (Fleet.settle_failed_eviction ~owed_ms:120.0 ~charged_ms:0.0);
  check (Alcotest.float 0.0) "attempt's own charge is given back" 100.0
    (Fleet.settle_failed_eviction ~owed_ms:130.0 ~charged_ms:30.0);
  check (Alcotest.float 0.0) "never refunds below zero" 0.0
    (Fleet.settle_failed_eviction ~owed_ms:20.0 ~charged_ms:30.0);
  check (Alcotest.float 0.0) "clean ledger stays clean" 0.0
    (Fleet.settle_failed_eviction ~owed_ms:0.0 ~charged_ms:0.0)

let test_fleet_chaos_recovers () =
  (* a flaky but survivable fault plane with a retrying transport: the
     fleet keeps making progress and books every abandoned eviction as a
     per-job recovery *)
  let st =
    Fleet.run
      { fleet_config with
        Fleet.f_transport =
          Dapper_net.Transport.retrying
            (Dapper_net.Transport.scp Dapper_net.Link.infiniband);
        f_fault = Some (Dapper_util.Fault.make ~seed:7 (Dapper_util.Fault.uniform 0.15)) }
      (fleet_jobs ())
  in
  check Alcotest.bool "jobs complete under chaos" true (st.Fleet.f_jobs_done > 0);
  let recovered = List.fold_left (fun a (_, n) -> a + n) 0 st.Fleet.f_recoveries in
  check Alcotest.int "recoveries = retries + structural failures"
    (st.Fleet.f_eviction_retries + st.Fleet.f_eviction_failures)
    recovered

(* ----- equivalence gate: the event-driven engines reproduce the seed -----

   The quantum-scan loops were replaced by heap-event engines; these
   fingerprints were captured from the seed implementation (commit
   ef5e10d) with the exact fixtures above. Every figure-relevant field
   is pinned at full float precision: a one-ulp drift or a reordered
   eviction fails the gate. *)

let sched_fp r =
  Printf.sprintf "jobs=%d xeon=%d rpi=%d energy=%.6f jpk=%.6f thr=%.6f"
    r.Scheduler.r_jobs_done r.r_jobs_xeon r.r_jobs_rpi r.r_energy_kj
    r.r_jobs_per_kj r.r_throughput_per_min

let fleet_fp st =
  Printf.sprintf
    "jobs=%d rpi=%d ev=%d evf=%d evr=%d lost=%d mig=%.6f energy=%.6f jpk=%.6f recov=[%s]"
    st.Fleet.f_jobs_done st.f_jobs_done_rpi st.f_evictions
    st.f_eviction_failures st.f_eviction_retries st.f_nodes_lost
    st.f_migration_ms_total st.f_energy_kj st.f_jobs_per_kj
    (String.concat ";"
       (List.map (fun (a, n) -> Printf.sprintf "%s,%d" a n) st.f_recoveries))

let test_scheduler_matches_seed () =
  List.iter
    (fun (rpis, golden) ->
      check Alcotest.string
        (Printf.sprintf "scheduler seed fingerprint, %d rpis" rpis)
        golden
        (sched_fp (Scheduler.run { base_config with c_rpis = rpis } kinds)))
    [ (0, "jobs=1523 xeon=1523 rpi=0 energy=194.400000 jpk=7.834362 thr=50.766667");
      (1, "jobs=1741 xeon=1487 rpi=254 energy=203.580000 jpk=8.551921 thr=58.033333");
      (3, "jobs=2183 xeon=1529 rpi=654 energy=221.940000 jpk=9.835992 thr=72.766667") ]

let test_fleet_matches_seed () =
  check Alcotest.string "fleet seed fingerprint, evicting"
    "jobs=27 rpi=7 ev=9 evf=0 evr=0 lost=0 mig=251.383580 energy=0.869400 jpk=31.055901 recov=[]"
    (fleet_fp (Fleet.run fleet_config (fleet_jobs ())));
  check Alcotest.string "fleet seed fingerprint, eviction off"
    "jobs=21 rpi=0 ev=0 evf=0 evr=0 lost=0 mig=0.000000 energy=0.841400 jpk=24.958403 recov=[]"
    (fleet_fp (Fleet.run { fleet_config with f_evict = false } (fleet_jobs ())))

(* The chaos re-sweep: fault draws and node-loss now fire from heap
   events, and must replay the seed's draw sequence exactly. *)
let test_fleet_chaos_matches_seed () =
  check Alcotest.string "fleet seed fingerprint, chaos + retrying transport"
    "jobs=26 rpi=5 ev=6 evf=0 evr=11 lost=1 mig=250.920175 energy=0.863450 jpk=30.111761 recov=[nginx,11]"
    (fleet_fp
       (Fleet.run
          { fleet_config with
            Fleet.f_transport =
              Dapper_net.Transport.retrying
                (Dapper_net.Transport.scp Dapper_net.Link.infiniband);
            f_fault =
              Some (Dapper_util.Fault.make ~seed:7 (Dapper_util.Fault.uniform 0.15)) }
          (fleet_jobs ())));
  check Alcotest.string "fleet seed fingerprint, certain node loss"
    "jobs=21 rpi=0 ev=0 evf=0 evr=2 lost=2 mig=0.000000 energy=0.841400 jpk=24.958403 recov=[nginx,2]"
    (fleet_fp
       (Fleet.run
          { fleet_config with
            Fleet.f_fault =
              Some
                (Dapper_util.Fault.make ~seed:1
                   { Dapper_util.Fault.calm with Dapper_util.Fault.fs_kill_node = 1.0 }) }
          (fleet_jobs ())))

let test_fleet_event_accounting () =
  (* the event count is the engine's work: at least one boundary per
     quantum, and far fewer events than the old [quanta x slots] scan *)
  let st = Fleet.run fleet_config (fleet_jobs ()) in
  let quanta =
    int_of_float (fleet_config.Fleet.f_window_ms /. fleet_config.Fleet.f_quantum_ms)
  in
  let slots =
    fleet_config.Fleet.f_xeon_slots
    + (fleet_config.Fleet.f_rpis * fleet_config.Fleet.f_rpi_slots_each)
  in
  let rpi_slots = fleet_config.Fleet.f_rpis * fleet_config.Fleet.f_rpi_slots_each in
  check Alcotest.bool "at least one event per quantum" true (st.Fleet.f_events >= quanta);
  (* per quantum: one boundary, at most one advance per slot, at most
     one eviction attempt per pi slot *)
  check Alcotest.bool "bounded by the quantum scan" true
    (st.Fleet.f_events <= quanta * (slots + rpi_slots + 1))

(* ----- placement policies ----- *)

let victims =
  [ { Placement.vc_index = 0; vc_started_ms = 100.0 };
    { Placement.vc_index = 1; vc_started_ms = 300.0 };
    { Placement.vc_index = 2; vc_started_ms = 300.0 };
    { Placement.vc_index = 3; vc_started_ms = 50.0 } ]

let test_placement_victims () =
  let pick p = Option.get (Placement.choose_victim p victims) in
  check Alcotest.int "latest-start: max start, first on ties" 1
    (pick Placement.Latest_start).Placement.vc_index;
  check Alcotest.int "slo-aware evicts like latest-start" 1
    (pick Placement.Slo_aware).Placement.vc_index;
  check Alcotest.int "first-fit: first busy slot" 0
    (pick Placement.First_fit).Placement.vc_index;
  check Alcotest.int "energy-aware: longest-running job" 3
    (pick Placement.Energy_aware).Placement.vc_index;
  check Alcotest.bool "no candidates" true
    (Placement.choose_victim Placement.Latest_start [] = None)

let dests =
  [ { Placement.dc_index = 0; dc_lowest_slot = 10; dc_ops_per_ns = 3.0;
      dc_core_w = 2.8; dc_est_ms = 140.0 };
    { Placement.dc_index = 1; dc_lowest_slot = 20; dc_ops_per_ns = 2.2;
      dc_core_w = 1.6; dc_est_ms = 190.0 };
    { Placement.dc_index = 2; dc_lowest_slot = 30; dc_ops_per_ns = 1.5;
      dc_core_w = 1.0; dc_est_ms = 280.0 } ]

let test_placement_dests () =
  let pick ?deadline_ms p =
    Option.get (Placement.choose_dest p ?deadline_ms dests)
  in
  check Alcotest.int "first-fit packs the lowest slot" 0
    (pick Placement.First_fit).Placement.dc_index;
  check Alcotest.int "latest-start places first-free" 0
    (pick Placement.Latest_start).Placement.dc_index;
  check Alcotest.int "energy-aware: best watts-per-speed" 2
    (pick Placement.Energy_aware).Placement.dc_index;
  check Alcotest.int "slo-aware: cheapest meeting the deadline" 1
    (pick ~deadline_ms:200.0 Placement.Slo_aware).Placement.dc_index;
  check Alcotest.int "slo-aware: loose deadline, cheapest overall" 2
    (pick ~deadline_ms:1000.0 Placement.Slo_aware).Placement.dc_index;
  check Alcotest.int "slo-aware: hopeless deadline, fastest" 0
    (pick ~deadline_ms:10.0 Placement.Slo_aware).Placement.dc_index;
  check Alcotest.bool "name/of_string roundtrip" true
    (List.for_all
       (fun p -> Placement.of_string (Placement.name p) = Some p)
       Placement.all)

(* Latency-aware placement: minimize the rack page-server wait a
   faulting request would be charged, falling back to [dc_est_ms]. *)
let test_placement_latency_aware () =
  let pick ?page_wait_ms () =
    Option.get (Placement.choose_dest Placement.Latency_aware ?page_wait_ms dests)
  in
  (* fastest class sits behind the most backed-up rack *)
  let waits = [| 12.0; 3.0; 7.0 |] in
  let wait d = waits.(d.Placement.dc_index) in
  check Alcotest.int "least page-server wait wins" 1
    (pick ~page_wait_ms:wait ()).Placement.dc_index;
  (* equal waits: tie broken on estimated completion *)
  let flat _ = 5.0 in
  check Alcotest.int "flat waits tie-break on dc_est_ms" 0
    (pick ~page_wait_ms:flat ()).Placement.dc_index;
  check Alcotest.int "no hook: falls back to dc_est_ms" 0
    (pick ()).Placement.dc_index;
  check Alcotest.int "evicts like latest-start" 1
    (Option.get (Placement.choose_victim Placement.Latency_aware victims))
      .Placement.vc_index;
  check Alcotest.bool "listed and parseable" true
    (List.mem Placement.Latency_aware Placement.all
     && Placement.of_string "latency-aware" = Some Placement.Latency_aware)

(* ----- the datacenter-scale engine ----- *)

let xl_config ~policy =
  { Fleet_xl.x_window_ms = 86_400_000.0;
    x_xeon_slots = 7;
    x_classes =
      [ { Fleet_xl.xc_node = Dapper_net.Node.jetson; xc_nodes = 2; xc_slots_per_node = 4 };
        { xc_node = Dapper_net.Node.rpi5; xc_nodes = 3; xc_slots_per_node = 3 };
        { xc_node = Dapper_net.Node.rpi; xc_nodes = 5; xc_slots_per_node = 3 } ];
    x_jobs = 1_000;
    x_placement = policy;
    x_shards = 4;
    x_racks = 2;
    x_page_servers_each = 4;
    x_slo_factor = 2.5;
    x_fault = None;
    x_loss_every_ms = 0.0;
    x_rack_gate = None;
    x_rack_report = None }

let test_xl_deterministic () =
  let a = Fleet_xl.run (xl_config ~policy:Placement.First_fit) kinds in
  let b = Fleet_xl.run (xl_config ~policy:Placement.First_fit) kinds in
  check Alcotest.bool "identical runs" true (a = b);
  check Alcotest.int "batch drains" 1_000 a.Fleet_xl.x_jobs_done;
  check Alcotest.bool "slow tier used" true (a.Fleet_xl.x_jobs_slow > 0);
  check Alcotest.bool "migrations queued behind page servers" true
    (a.Fleet_xl.x_rack_queue_ms > 0.0);
  check Alcotest.bool "events accounted" true
    (a.Fleet_xl.x_events >= a.Fleet_xl.x_jobs_done)

let test_xl_policies_diverge () =
  let ff = Fleet_xl.run (xl_config ~policy:Placement.First_fit) kinds in
  let ea = Fleet_xl.run (xl_config ~policy:Placement.Energy_aware) kinds in
  let slo = Fleet_xl.run (xl_config ~policy:Placement.Slo_aware) kinds in
  check Alcotest.int "slo-aware misses no deadline" 0 slo.Fleet_xl.x_slo_missed;
  check Alcotest.bool "first-fit misses deadlines on the slow boards" true
    (ff.Fleet_xl.x_slo_missed > 0);
  check Alcotest.bool "energy-aware powers fewer boards" true
    (ea.Fleet_xl.x_nodes_powered < ff.Fleet_xl.x_nodes_powered);
  check Alcotest.bool "first-fit finishes first" true
    (ff.Fleet_xl.x_makespan_ms <= ea.Fleet_xl.x_makespan_ms);
  check Alcotest.bool "all policies drain the batch" true
    (ff.Fleet_xl.x_jobs_done = 1_000 && ea.x_jobs_done = 1_000 && slo.x_jobs_done = 1_000)

(* Chaos at scale: node-loss draws are heap events. A certain-kill
   fault plane fells one slow node per draw; in-flight jobs on the dead
   node are voided by their generation counter, re-enqueued, and still
   finish — the batch never loses a job. *)
let test_xl_node_loss_events () =
  let st =
    Fleet_xl.run
      { (xl_config ~policy:Placement.First_fit) with
        Fleet_xl.x_fault =
          Some
            (Dapper_util.Fault.make ~seed:5
               { Dapper_util.Fault.calm with Dapper_util.Fault.fs_kill_node = 1.0 });
        x_loss_every_ms = 30_000.0 }
      kinds
  in
  check Alcotest.bool "nodes die" true (st.Fleet_xl.x_nodes_lost > 0);
  check Alcotest.bool "in-flight jobs voided and re-enqueued" true
    (st.Fleet_xl.x_jobs_lost_in_flight > 0);
  check Alcotest.int "no job is ever lost" 1_000 st.Fleet_xl.x_jobs_done;
  check Alcotest.bool "at most the whole slow tier dies" true
    (st.Fleet_xl.x_nodes_lost <= 10)

let suites =
  [ ( "cluster",
      [ Alcotest.test_case "baseline sane" `Quick test_baseline_sane;
        Alcotest.test_case "pis improve" `Quick test_pis_improve_efficiency_and_throughput;
        Alcotest.test_case "migration overhead" `Quick test_migration_overhead_hurts;
        Alcotest.test_case "window scaling" `Quick test_window_scaling;
        Alcotest.test_case "fleet: real evictions" `Slow test_fleet_eviction_happens;
        Alcotest.test_case "fleet: eviction beats baseline" `Slow
          test_fleet_eviction_beats_baseline;
        Alcotest.test_case "fleet: edge configurations" `Quick test_fleet_edge_configs;
        Alcotest.test_case "fleet: transient eviction failures retried" `Slow
          test_fleet_eviction_retries;
        Alcotest.test_case "fleet: node loss survived" `Slow test_fleet_node_loss;
        Alcotest.test_case "fleet: failed-eviction stall settlement" `Quick
          test_settle_failed_eviction;
        Alcotest.test_case "fleet: chaos recovery accounting" `Slow
          test_fleet_chaos_recovers;
        Alcotest.test_case "equivalence gate: scheduler matches seed" `Quick
          test_scheduler_matches_seed;
        Alcotest.test_case "equivalence gate: fleet matches seed" `Slow
          test_fleet_matches_seed;
        Alcotest.test_case "equivalence gate: chaos fleet matches seed" `Slow
          test_fleet_chaos_matches_seed;
        Alcotest.test_case "fleet: event accounting" `Slow test_fleet_event_accounting;
        Alcotest.test_case "placement: victim selection" `Quick test_placement_victims;
        Alcotest.test_case "placement: destination selection" `Quick
          test_placement_dests;
        Alcotest.test_case "placement: latency-aware" `Quick
          test_placement_latency_aware;
        Alcotest.test_case "xl: deterministic drain" `Quick test_xl_deterministic;
        Alcotest.test_case "xl: policies diverge" `Quick test_xl_policies_diverge;
        Alcotest.test_case "xl: node loss as heap events" `Quick
          test_xl_node_loss_events ] ) ]
