let () =
  Alcotest.run "dapper"
    (Test_util.suites
     @ Test_isa.suites
     @ Test_codegen.suites
     @ Test_clite.suites
     @ Test_dapper.suites
     @ Test_workloads.suites
     @ Test_security.suites
     @ Test_cluster.suites
     @ Test_proto.suites
     @ Test_machine.suites
     @ Test_criu.suites
     @ Test_monitor.suites
     @ Test_policy.suites
     @ Test_rewrite.suites
     @ Test_parse.suites
     @ Test_fuzz.suites
     @ Test_net.suites
     @ Test_session.suites
     @ Test_stackmap_invariants.suites
     @ Test_indexes.suites
     @ Test_verify.suites
     @ Test_chaos.suites
     @ Test_obs.suites
     @ Test_replay.suites
     @ Test_traffic.suites
     @ Test_health.suites)
