(* The chaos harness's own guarantees: runs are replayable bit for bit
   from their seed, a calm schedule always commits, and a hostile sweep
   never loses a process. The 200-seed suite proper runs as the @chaos
   dune alias; this keeps a smaller sweep in tier 1. *)

open Dapper_isa
module Chaos = Dapper_verify.Chaos
module Corpus = Dapper_verify.Corpus
module Fault = Dapper_util.Fault

let check = Alcotest.check

let quickstart () = Option.get (Corpus.find "mini-quickstart")

let test_chaos_replayable () =
  let once () =
    match
      Chaos.run_one ~spec:(Fault.uniform 0.3) ~seed:5 ~src:Arch.X86_64
        ~dst:Arch.Aarch64 (quickstart ())
    with
    | Ok r -> Chaos.run_report_to_string r
    | Error f -> Alcotest.fail (Chaos.failure_to_string f)
  in
  check Alcotest.string "same seed, same run" (once ()) (once ())

let test_chaos_calm_commits () =
  match
    Chaos.run_one ~spec:Fault.calm ~seed:0 ~src:Arch.X86_64 ~dst:Arch.Aarch64
      (quickstart ())
  with
  | Error f -> Alcotest.fail (Chaos.failure_to_string f)
  | Ok r ->
    check Alcotest.bool "calm runs commit" true (r.Chaos.cr_verdict = Chaos.Committed);
    check Alcotest.int "no faults injected" 0 r.Chaos.cr_faults;
    check Alcotest.int "nothing retransmitted" 0 r.Chaos.cr_retransmits

let test_chaos_sweep_invariant () =
  match Chaos.sweep ~spec:(Fault.uniform 0.25) ~seeds:12 () with
  | Error f -> Alcotest.fail (Chaos.failure_to_string f)
  | Ok s ->
    check Alcotest.int "every seed ran" 12 s.Chaos.cs_runs;
    check Alcotest.int "every run committed or rolled back" 12
      (s.Chaos.cs_committed + s.Chaos.cs_rolled_back);
    check Alcotest.bool "chaos actually happened" true (s.Chaos.cs_faults > 0)

let suites =
  [ ( "chaos",
      [ Alcotest.test_case "runs replayable from seed" `Quick test_chaos_replayable;
        Alcotest.test_case "calm schedule commits" `Quick test_chaos_calm_commits;
        Alcotest.test_case "hostile sweep: no process lost" `Slow
          test_chaos_sweep_invariant ] ) ]
