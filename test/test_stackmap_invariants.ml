(* Structural invariants of the compiler-emitted stack maps, checked over
   every workload binary on both ISAs. These are the preconditions the
   unwinder/rewriter rely on; a violation here means a silent layout bug
   that end-to-end tests might only hit probabilistically. *)

open Dapper_isa
open Dapper_binary
open Dapper_workloads
module Link = Dapper_codegen.Link

let check = Alcotest.check

let check_func arch (_bin : Binary.t) (fm : Stackmap.func_map) =
  let name ep = Printf.sprintf "%s/%s ep%d" (Arch.name arch) fm.fm_name ep in
  (* frame size is 16-aligned and covers the save area *)
  check Alcotest.bool (fm.fm_name ^ " frame aligned") true (fm.fm_frame_size mod 16 = 0);
  List.iter
    (fun (r, off) ->
      check Alcotest.bool (fm.fm_name ^ " save slot in frame") true
        (off < 0 && off >= -fm.fm_frame_size);
      check Alcotest.bool (fm.fm_name ^ " saved reg is callee-saved") true
        (List.mem r (Arch.callee_saved arch)))
    fm.fm_saved;
  (* promoted registers are callee-saved and saved in the frame *)
  List.iter
    (fun (_, r) ->
      check Alcotest.bool (fm.fm_name ^ " promoted reg saved") true
        (List.mem_assoc r fm.fm_saved))
    fm.fm_promoted;
  List.iter
    (fun (ep : Stackmap.eqpoint) ->
      (* addresses fall inside the function *)
      let inside a =
        Int64.compare a fm.fm_addr >= 0
        && Int64.compare a (Int64.add fm.fm_addr (Int64.of_int fm.fm_code_size)) <= 0
      in
      check Alcotest.bool (name ep.ep_id ^ " addr inside") true (inside ep.ep_addr);
      check Alcotest.bool (name ep.ep_id ^ " resume inside") true (inside ep.ep_resume);
      check Alcotest.bool (name ep.ep_id ^ " resume after addr") true
        (Int64.compare ep.ep_resume ep.ep_addr > 0);
      (* frame-resident live values stay within the frame and do not
         overlap; register-resident ones use real registers *)
      let intervals = ref [] in
      List.iter
        (fun (lv : Stackmap.live_value) ->
          check Alcotest.bool (name ep.ep_id ^ " size") true
            (lv.lv_size > 0 && lv.lv_size mod 8 = 0);
          match lv.lv_loc with
          | Stackmap.Reg r ->
            check Alcotest.bool (name ep.ep_id ^ " reg valid") true
              (r >= 0 && r < Arch.gpr_count arch);
            check Alcotest.bool (name ep.ep_id ^ " reg callee-saved") true
              (List.mem r (Arch.callee_saved arch))
          | Stackmap.Frame off ->
            check Alcotest.bool (name ep.ep_id ^ " within frame") true
              (off < 0 && off + lv.lv_size <= 0 && off >= -fm.fm_frame_size);
            check Alcotest.bool (name ep.ep_id ^ " below save area") true
              (List.for_all (fun (_, s) -> off + lv.lv_size <= s || off >= s + 8)
                 fm.fm_saved);
            List.iter
              (fun (lo, hi) ->
                check Alcotest.bool (name ep.ep_id ^ " no overlap") true
                  (off + lv.lv_size <= lo || off >= hi))
              !intervals;
            intervals := (off, off + lv.lv_size) :: !intervals)
        ep.ep_live)
    fm.fm_eqpoints;
  (* equivalence point ids are unique and dense from zero *)
  let ids = List.map (fun (ep : Stackmap.eqpoint) -> ep.ep_id) fm.fm_eqpoints in
  let sorted = List.sort_uniq compare ids in
  check Alcotest.bool (fm.fm_name ^ " ep ids unique") true
    (List.length sorted = List.length ids);
  match sorted with
  | [] -> ()
  | first :: _ ->
    check Alcotest.int (fm.fm_name ^ " ids start at 0") 0 first

let check_binary_pair (c : Link.compiled) =
  (* per-arch structural invariants *)
  List.iter
    (fun arch ->
      let bin = Link.binary_for c arch in
      List.iter (check_func arch bin) bin.Binary.bin_stackmaps)
    Arch.all;
  (* cross-ISA correspondence: same functions, same eqpoint ids/kinds,
     same live-value keys per eqpoint *)
  List.iter2
    (fun (fx : Stackmap.func_map) (fa : Stackmap.func_map) ->
      check Alcotest.string "same function order" fx.fm_name fa.fm_name;
      check Alcotest.bool (fx.fm_name ^ " same addr") true
        (Int64.equal fx.fm_addr fa.fm_addr);
      check Alcotest.int (fx.fm_name ^ " same ep count")
        (List.length fx.fm_eqpoints) (List.length fa.fm_eqpoints);
      List.iter2
        (fun (ex : Stackmap.eqpoint) (ea : Stackmap.eqpoint) ->
          check Alcotest.int "ep id" ex.ep_id ea.ep_id;
          check Alcotest.bool "ep kind" true (ex.ep_kind = ea.ep_kind);
          let keys (ep : Stackmap.eqpoint) =
            List.map (fun (lv : Stackmap.live_value) -> lv.lv_key) ep.ep_live
            |> List.sort compare
          in
          check Alcotest.bool
            (Printf.sprintf "%s ep%d same live keys" fx.fm_name ex.ep_id)
            true
            (keys ex = keys ea))
        fx.fm_eqpoints fa.fm_eqpoints)
    c.Link.cp_x86.bin_stackmaps c.Link.cp_arm.bin_stackmaps

(* Shuffled binaries must satisfy every structural invariant too: the
   permutation may move slots but never overlap them, escape the frame,
   or desynchronize the cross-ISA key correspondence. *)
let test_shuffled_binaries_keep_invariants () =
  let c = Registry.compiled (Registry.find "nginx") in
  List.iter
    (fun seed ->
      let rng = Dapper_util.Rng.create (Int64.of_int seed) in
      let sx, _ = Dapper.Shuffle.shuffle_binary rng c.Link.cp_x86 in
      let sa, _ = Dapper.Shuffle.shuffle_binary rng c.Link.cp_arm in
      check_binary_pair
        { c with Link.cp_x86 = sx; cp_arm = sa })
    [ 1; 7; 42; 1337 ]

let suites =
  [ ( "stackmap-invariants",
      List.map
        (fun sp ->
          Alcotest.test_case sp.Registry.sp_name `Quick (fun () ->
              check_binary_pair (Registry.compiled sp)))
        (Registry.all ())
      @ [ Alcotest.test_case "shuffled binaries keep invariants" `Quick
            test_shuffled_binaries_keep_invariants ] ) ]
