open Dapper_isa
open Dapper_ir
open Dapper_codegen
open Dapper_machine

let check = Alcotest.check

(* Tiny IR-building helpers for hand-written test programs. *)
let func name ?(params = []) ?(slots = []) ~vregs blocks =
  { Ir.fname = name; fparams = params;
    fslots =
      List.mapi
        (fun i (n, size, ty, addr_taken) ->
          { Ir.sl_id = i; sl_name = n; sl_size = size; sl_ty = ty;
            sl_addr_taken = addr_taken })
        slots;
    fblocks = Array.of_list (List.mapi (fun i (instrs, term) ->
        { Ir.blabel = i; instrs; term }) blocks);
    fvreg_tys = Array.make (max vregs 1) Ir.I64 }

let modul ?(globals = []) ?(tls = []) name funcs =
  { Ir.m_name = name; m_funcs = funcs;
    m_globals = List.map (fun (n, sz) -> { Ir.g_name = n; g_size = sz; g_init = None }) globals;
    m_tls = List.map (fun (n, sz) -> { Ir.t_name = n; t_size = sz }) tls }

(* Run a module to completion on [arch]; return (exit_code, stdout). *)
let run_on arch ?(fuel = 20_000_000) m =
  let compiled = Link.compile ~app:m.Ir.m_name m in
  let bin = Link.binary_for compiled arch in
  let p = Process.load bin in
  match Process.run_to_completion p ~fuel with
  | Process.Exited_run code -> (code, Process.stdout_contents p)
  | Process.Crashed c ->
    Alcotest.fail
      (Printf.sprintf "%s crashed on %s: tid=%d pc=0x%Lx %s" m.Ir.m_name
         (Arch.name arch) c.cr_tid c.cr_pc c.cr_reason)
  | Process.Idle -> Alcotest.fail "deadlock"
  | Process.Progress -> Alcotest.fail "out of fuel"

(* Cross-ISA check: same program, same observable behaviour. *)
let check_both ?fuel m ~code ~out =
  List.iter
    (fun arch ->
      let c, o = run_on arch ?fuel m in
      check Alcotest.int (Printf.sprintf "%s exit" (Arch.name arch)) code (Int64.to_int c);
      check Alcotest.string (Printf.sprintf "%s stdout" (Arch.name arch)) out o)
    Arch.all

(* --- programs --- *)

let prog_ret42 =
  modul "ret42" [ func "main" ~vregs:0 [ ([], Ir.Ret (Some (Ir.Imm 42L))) ] ]

let prog_loop_sum =
  (* sum = 0; for i in 1..10: sum += i; return sum (55) *)
  let main =
    func "main" ~slots:[ ("i", 8, Ir.I64, false); ("sum", 8, Ir.I64, false) ] ~vregs:6
      [ ( [ Ir.Slot_store (Ir.Imm 1L, 0); Ir.Slot_store (Ir.Imm 0L, 1) ], Ir.Br 1 );
        ( [ Ir.Slot_load (0, 0); Ir.Binop (Cmple, 1, Ir.Vreg 0, Ir.Imm 10L) ],
          Ir.Cbr (Ir.Vreg 1, 2, 3) );
        ( [ Ir.Slot_load (2, 1); Ir.Slot_load (3, 0);
            Ir.Binop (Add, 4, Ir.Vreg 2, Ir.Vreg 3); Ir.Slot_store (Ir.Vreg 4, 1);
            Ir.Binop (Add, 5, Ir.Vreg 3, Ir.Imm 1L); Ir.Slot_store (Ir.Vreg 5, 0) ],
          Ir.Br 1 );
        ( [ Ir.Slot_load (0, 1) ], Ir.Ret (Some (Ir.Vreg 0)) ) ]
  in
  modul "loop_sum" [ main ]

let prog_call =
  let add =
    func "add" ~params:[ ("a", Ir.I64); ("b", Ir.I64) ]
      ~slots:[ ("a", 8, Ir.I64, false); ("b", 8, Ir.I64, false) ] ~vregs:3
      [ ( [ Ir.Slot_load (0, 0); Ir.Slot_load (1, 1);
            Ir.Binop (Add, 2, Ir.Vreg 0, Ir.Vreg 1) ],
          Ir.Ret (Some (Ir.Vreg 2)) ) ]
  in
  let main =
    func "main" ~vregs:1
      [ ( [ Ir.Call (Some 0, Ir.Direct "add", [ Ir.Imm 40L; Ir.Imm 2L ]) ],
          Ir.Ret (Some (Ir.Vreg 0)) ) ]
  in
  modul "call" [ add; main ]

let prog_factorial =
  let fact =
    func "fact" ~params:[ ("n", Ir.I64) ] ~slots:[ ("n", 8, Ir.I64, false) ] ~vregs:5
      [ ( [ Ir.Slot_load (0, 0); Ir.Binop (Cmple, 1, Ir.Vreg 0, Ir.Imm 1L) ],
          Ir.Cbr (Ir.Vreg 1, 1, 2) );
        ( [], Ir.Ret (Some (Ir.Imm 1L)) );
        ( [ Ir.Slot_load (2, 0); Ir.Binop (Sub, 3, Ir.Vreg 2, Ir.Imm 1L);
            Ir.Call (Some 4, Ir.Direct "fact", [ Ir.Vreg 3 ]);
            Ir.Binop (Mul, 4, Ir.Vreg 2, Ir.Vreg 4) ],
          Ir.Ret (Some (Ir.Vreg 4)) ) ]
  in
  let main =
    func "main" ~vregs:1
      [ ( [ Ir.Call (Some 0, Ir.Direct "fact", [ Ir.Imm 5L ]) ],
          Ir.Ret (Some (Ir.Vreg 0)) ) ]
  in
  modul "factorial" [ fact; main ]

let prog_globals =
  let main =
    func "main" ~vregs:2
      [ ( [ Ir.Store (Ir.Imm 7L, Ir.Global_addr "g");
            Ir.Load (0, Ir.Global_addr "g");
            Ir.Binop (Mul, 1, Ir.Vreg 0, Ir.Imm 6L) ],
          Ir.Ret (Some (Ir.Vreg 1)) ) ]
  in
  modul ~globals:[ ("g", 8) ] "globals" [ main ]

let prog_tls =
  let bump =
    func "bump" ~vregs:4
      [ ( [ Ir.Tls_addr (0, "counter"); Ir.Load (1, Ir.Vreg 0);
            Ir.Binop (Add, 2, Ir.Vreg 1, Ir.Imm 5L);
            Ir.Store (Ir.Vreg 2, Ir.Vreg 0) ],
          Ir.Ret None ) ]
  in
  let main =
    func "main" ~vregs:2
      [ ( [ Ir.Call (None, Ir.Direct "bump", []); Ir.Call (None, Ir.Direct "bump", []);
            Ir.Tls_addr (0, "counter"); Ir.Load (1, Ir.Vreg 0) ],
          Ir.Ret (Some (Ir.Vreg 1)) ) ]
  in
  modul ~tls:[ ("counter", 8) ] "tls" [ bump; main ]

let prog_write =
  let main =
    func "main" ~slots:[ ("buf", 8, Ir.I64, true) ] ~vregs:2
      [ ( [ Ir.Slot_addr (0, 0);
            (* "hi\n" = 0x0a6968 little-endian *)
            Ir.Store (Ir.Imm 0x0a6968L, Ir.Vreg 0);
            Ir.Call (Some 1, Ir.Direct "write", [ Ir.Imm 1L; Ir.Vreg 0; Ir.Imm 3L ]) ],
          Ir.Ret (Some (Ir.Imm 0L)) ) ]
  in
  modul "write" [ main ]

let prog_array =
  (* a[8] array on the stack; a[i] = i*i; return a[7] (49) *)
  let main =
    func "main" ~slots:[ ("a", 64, Ir.I64, true); ("i", 8, Ir.I64, false) ] ~vregs:10
      [ ( [ Ir.Slot_store (Ir.Imm 0L, 1) ], Ir.Br 1 );
        ( [ Ir.Slot_load (0, 1); Ir.Binop (Cmplt, 1, Ir.Vreg 0, Ir.Imm 8L) ],
          Ir.Cbr (Ir.Vreg 1, 2, 3) );
        ( [ Ir.Slot_load (2, 1); Ir.Slot_addr (3, 0);
            Ir.Binop (Mul, 4, Ir.Vreg 2, Ir.Imm 8L);
            Ir.Binop (Add, 5, Ir.Vreg 3, Ir.Vreg 4);
            Ir.Binop (Mul, 6, Ir.Vreg 2, Ir.Vreg 2);
            Ir.Store (Ir.Vreg 6, Ir.Vreg 5);
            Ir.Binop (Add, 7, Ir.Vreg 2, Ir.Imm 1L);
            Ir.Slot_store (Ir.Vreg 7, 1) ],
          Ir.Br 1 );
        ( [ Ir.Slot_addr (8, 0); Ir.Binop (Add, 8, Ir.Vreg 8, Ir.Imm 56L);
            Ir.Load (9, Ir.Vreg 8) ],
          Ir.Ret (Some (Ir.Vreg 9)) ) ]
  in
  modul "array" [ main ]

let prog_indirect =
  let double_ =
    func "double" ~params:[ ("x", Ir.I64) ] ~slots:[ ("x", 8, Ir.I64, false) ] ~vregs:2
      [ ( [ Ir.Slot_load (0, 0); Ir.Binop (Add, 1, Ir.Vreg 0, Ir.Vreg 0) ],
          Ir.Ret (Some (Ir.Vreg 1)) ) ]
  in
  let main =
    func "main" ~slots:[ ("fp", 8, Ir.Ptr, false) ] ~vregs:2
      [ ( [ Ir.Slot_store (Ir.Func_addr "double", 0); Ir.Slot_load (0, 0);
            Ir.Call (Some 1, Ir.Indirect (Ir.Vreg 0), [ Ir.Imm 21L ]) ],
          Ir.Ret (Some (Ir.Vreg 1)) ) ]
  in
  modul "indirect" [ double_; main ]

let prog_float =
  (* sqrt(2.0) * sqrt(2.0) rounded to int = 2 *)
  let main =
    func "main" ~vregs:4
      [ ( [ Ir.Unop (Fsqrt, 0, Ir.Fimm 2.0);
            Ir.Binop (Fmul, 1, Ir.Vreg 0, Ir.Vreg 0);
            Ir.Binop (Fadd, 2, Ir.Vreg 1, Ir.Fimm 0.000001);
            Ir.Unop (Fptosi, 3, Ir.Vreg 2) ],
          Ir.Ret (Some (Ir.Vreg 3)) ) ]
  in
  modul "float" [ main ]

let prog_threads =
  (* two workers add 100 each to a mutex-protected global; main joins *)
  let worker =
    func "worker" ~params:[ ("arg", Ir.I64) ]
      ~slots:[ ("arg", 8, Ir.I64, false); ("i", 8, Ir.I64, false) ] ~vregs:8
      [ ( [ Ir.Slot_store (Ir.Imm 0L, 1) ], Ir.Br 1 );
        ( [ Ir.Slot_load (0, 1); Ir.Binop (Cmplt, 1, Ir.Vreg 0, Ir.Imm 100L) ],
          Ir.Cbr (Ir.Vreg 1, 2, 3) );
        ( [ Ir.Call (None, Ir.Direct "lock", [ Ir.Global_addr "m" ]);
            Ir.Load (2, Ir.Global_addr "total");
            Ir.Binop (Add, 3, Ir.Vreg 2, Ir.Imm 1L);
            Ir.Store (Ir.Vreg 3, Ir.Global_addr "total");
            Ir.Call (None, Ir.Direct "unlock", [ Ir.Global_addr "m" ]);
            Ir.Slot_load (4, 1); Ir.Binop (Add, 5, Ir.Vreg 4, Ir.Imm 1L);
            Ir.Slot_store (Ir.Vreg 5, 1) ],
          Ir.Br 1 );
        ( [], Ir.Ret (Some (Ir.Imm 0L)) ) ]
  in
  let main =
    func "main" ~slots:[ ("t1", 8, Ir.I64, false); ("t2", 8, Ir.I64, false) ] ~vregs:6
      [ ( [ Ir.Call (Some 0, Ir.Direct "spawn", [ Ir.Func_addr "worker"; Ir.Imm 0L ]);
            Ir.Slot_store (Ir.Vreg 0, 0);
            Ir.Call (Some 1, Ir.Direct "spawn", [ Ir.Func_addr "worker"; Ir.Imm 0L ]);
            Ir.Slot_store (Ir.Vreg 1, 1);
            Ir.Slot_load (2, 0); Ir.Call (None, Ir.Direct "join", [ Ir.Vreg 2 ]);
            Ir.Slot_load (3, 1); Ir.Call (None, Ir.Direct "join", [ Ir.Vreg 3 ]);
            Ir.Load (4, Ir.Global_addr "total") ],
          Ir.Ret (Some (Ir.Vreg 4)) ) ]
  in
  modul ~globals:[ ("total", 8); ("m", 8) ] "threads" [ worker; main ]

(* --- structural checks --- *)

let test_symbol_alignment () =
  let c = Link.compile ~app:"factorial" prog_factorial in
  List.iter2
    (fun (sx : Dapper_binary.Binary.symbol) (sa : Dapper_binary.Binary.symbol) ->
      check Alcotest.string "same name" sx.sym_name sa.sym_name;
      check Alcotest.bool
        (Printf.sprintf "aligned addr for %s" sx.sym_name)
        true
        (Int64.equal sx.sym_addr sa.sym_addr))
    c.cp_x86.bin_symbols c.cp_arm.bin_symbols

let test_text_differs () =
  let c = Link.compile ~app:"factorial" prog_factorial in
  let tx = Option.get (Dapper_binary.Binary.find_section c.cp_x86 ".text") in
  let ta = Option.get (Dapper_binary.Binary.find_section c.cp_arm ".text") in
  check Alcotest.bool "same text size (padded)" true
    (String.length tx.sec_data = String.length ta.sec_data);
  check Alcotest.bool "different encodings" true (tx.sec_data <> ta.sec_data)

let test_eqpoints_correspond () =
  let c = Link.compile ~app:"factorial" prog_factorial in
  let fx = Option.get (Dapper_binary.Stackmap.find_func c.cp_x86.bin_stackmaps "fact") in
  let fa = Option.get (Dapper_binary.Stackmap.find_func c.cp_arm.bin_stackmaps "fact") in
  check Alcotest.int "same ep count" (List.length fx.fm_eqpoints) (List.length fa.fm_eqpoints);
  List.iter2
    (fun (ex : Dapper_binary.Stackmap.eqpoint) (ea : Dapper_binary.Stackmap.eqpoint) ->
      check Alcotest.int "same ep id" ex.ep_id ea.ep_id;
      check Alcotest.bool "same kind" true (ex.ep_kind = ea.ep_kind);
      check Alcotest.int "same live count"
        (List.length ex.ep_live) (List.length ea.ep_live))
    fx.fm_eqpoints fa.fm_eqpoints

let test_promotion_asymmetry () =
  (* A function with many scalars: aarch64 promotes more of them. *)
  let slots = List.init 8 (fun i -> (Printf.sprintf "v%d" i, 8, Ir.I64, false)) in
  let f =
    func "many" ~slots ~vregs:1
      [ ( [ Ir.Slot_store (Ir.Imm 1L, 7); Ir.Slot_load (0, 7) ],
          Ir.Ret (Some (Ir.Vreg 0)) ) ]
  in
  let m = modul "many" [ f; func "main" ~vregs:1
    [ ([ Ir.Call (Some 0, Ir.Direct "many", []) ], Ir.Ret (Some (Ir.Vreg 0))) ] ] in
  let c = Link.compile ~app:"many" m in
  let fx = Option.get (Dapper_binary.Stackmap.find_func c.cp_x86.bin_stackmaps "many") in
  let fa = Option.get (Dapper_binary.Stackmap.find_func c.cp_arm.bin_stackmaps "many") in
  check Alcotest.int "x86 promotes 5" 5 (List.length fx.fm_promoted);
  check Alcotest.int "arm promotes 8" 8 (List.length fa.fm_promoted);
  (* And the program still runs correctly on both. *)
  check_both m ~code:1 ~out:""

let test_stackmap_serialization_roundtrip () =
  let c = Link.compile ~app:"threads" prog_threads in
  let ser = Dapper_binary.Stackmap.serialize c.cp_x86.bin_stackmaps in
  let back = Dapper_binary.Stackmap.deserialize ser in
  check Alcotest.bool "roundtrip" true (back = c.cp_x86.bin_stackmaps)

let test_binary_serialization_roundtrip () =
  let c = Link.compile ~app:"call" prog_call in
  let ser = Dapper_binary.Binary.serialize c.cp_arm in
  let back = Dapper_binary.Binary.deserialize ser in
  check Alcotest.bool "roundtrip" true (back = c.cp_arm)

let suites =
  [ ( "codegen-exec",
      [ Alcotest.test_case "ret42" `Quick (fun () -> check_both prog_ret42 ~code:42 ~out:"");
        Alcotest.test_case "loop sum" `Quick (fun () -> check_both prog_loop_sum ~code:55 ~out:"");
        Alcotest.test_case "call" `Quick (fun () -> check_both prog_call ~code:42 ~out:"");
        Alcotest.test_case "factorial" `Quick (fun () -> check_both prog_factorial ~code:120 ~out:"");
        Alcotest.test_case "globals" `Quick (fun () -> check_both prog_globals ~code:42 ~out:"");
        Alcotest.test_case "tls" `Quick (fun () -> check_both prog_tls ~code:10 ~out:"");
        Alcotest.test_case "write" `Quick (fun () -> check_both prog_write ~code:0 ~out:"hi\n");
        Alcotest.test_case "stack array" `Quick (fun () -> check_both prog_array ~code:49 ~out:"");
        Alcotest.test_case "indirect call" `Quick (fun () -> check_both prog_indirect ~code:42 ~out:"");
        Alcotest.test_case "float" `Quick (fun () -> check_both prog_float ~code:2 ~out:"");
        Alcotest.test_case "threads+mutex" `Quick (fun () -> check_both prog_threads ~code:200 ~out:"") ] );
    ( "codegen-structure",
      [ Alcotest.test_case "symbol alignment" `Quick test_symbol_alignment;
        Alcotest.test_case "text differs per ISA" `Quick test_text_differs;
        Alcotest.test_case "eqpoints correspond" `Quick test_eqpoints_correspond;
        Alcotest.test_case "promotion asymmetry" `Quick test_promotion_asymmetry;
        Alcotest.test_case "stackmap roundtrip" `Quick test_stackmap_serialization_roundtrip;
        Alcotest.test_case "binary roundtrip" `Quick test_binary_serialization_roundtrip ] ) ]
