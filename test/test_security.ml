open Dapper_isa
open Dapper_security
open Dapper
module Link = Dapper_codegen.Link

let check = Alcotest.check

let compiled_vuln attack =
  Link.compile ~app:"vuln" (Exploits.vulnerable_module attack)

let test_gadget_scan_basics () =
  let c = Registry_helpers.compute () in
  let gx = Gadgets.scan c.Link.cp_x86 in
  let ga = Gadgets.scan c.Link.cp_arm in
  check Alcotest.bool "x86 has gadgets" true (gx.g_total > 0);
  check Alcotest.bool "arm has gadgets" true (ga.g_total > 0);
  (* variable-length encoding yields far more gadget starts *)
  check Alcotest.bool "x86 denser than arm" true (gx.g_total > ga.g_total)

let test_popcorn_baseline_has_more_gadgets () =
  let sp = Dapper_workloads.Registry.find "nginx" in
  let m = Lazy.force sp.sp_modul in
  let plain = Link.compile ~app:"nginx" m in
  let popcorn =
    Link.compile_with_inline_runtime ~app:"nginx" ~runtime_ir:(Popcorn.runtime_ir ()) m
  in
  List.iter
    (fun arch ->
      let g_plain = Gadgets.scan (Link.binary_for plain arch) in
      let g_pop = Gadgets.scan (Link.binary_for popcorn arch) in
      check Alcotest.bool
        (Printf.sprintf "%s: inline runtime adds gadgets" (Arch.name arch))
        true
        (g_pop.g_total > g_plain.g_total);
      let red = Gadgets.reduction_pct ~baseline:g_pop ~subject:g_plain in
      check Alcotest.bool
        (Printf.sprintf "%s: reduction %.1f%% in a plausible band" (Arch.name arch) red)
        true
        (red > 20.0 && red < 95.0))
    Arch.all

let test_exploits_succeed_unprotected () =
  List.iter
    (fun attack ->
      let c = compiled_vuln attack in
      List.iter
        (fun arch ->
          let bin = Link.binary_for c arch in
          match Exploits.run ~attack ~target:bin ~knowledge:bin with
          | Exploits.Pwned -> ()
          | o ->
            Alcotest.fail
              (Printf.sprintf "%s on %s should pwn the unprotected binary, got %s"
                 (Exploits.attack_name attack) (Arch.name arch)
                 (Exploits.outcome_to_string o)))
        Arch.all)
    Exploits.all_attacks

let test_shuffle_mitigates () =
  (* Across seeds, shuffling must defeat the payloads almost always;
     an attack that still lands with probability (1/2n)^k can get lucky,
     so this is statistical. *)
  List.iter
    (fun attack ->
      let c = compiled_vuln attack in
      let bin = c.Link.cp_x86 in
      let trials = 24 in
      let pwned = ref 0 in
      for seed = 1 to trials do
        let shuffled, _ =
          Shuffle.shuffle_binary (Dapper_util.Rng.create (Int64.of_int seed)) bin
        in
        match Exploits.run ~attack ~target:shuffled ~knowledge:bin with
        | Exploits.Pwned -> incr pwned
        | Exploits.Defeated | Exploits.Crashed _ -> ()
      done;
      check Alcotest.bool
        (Printf.sprintf "%s mostly defeated (%d/%d pwned)" (Exploits.attack_name attack)
           !pwned trials)
        true
        (!pwned * 3 < trials))
    Exploits.all_attacks

let test_entropy_math () =
  (* paper: 4 bits of entropy = 8 shuffled allocations = 106 layouts,
     single-guess probability 0.125 *)
  check (Alcotest.float 0.001) "layouts" 106.0 (Shuffle.layouts_for_bits 4);
  check (Alcotest.float 0.0001) "guess prob" 0.125 (Shuffle.guess_probability 4);
  let p3 = Shuffle.guess_probability 4 ** 3.0 in
  check Alcotest.bool "DOP 3-write success ~0.19%" true (p3 > 0.0019 && p3 < 0.0020)

let test_entropy_asymmetry () =
  (* aarch64 achieves fewer bits: more promotion plus pair pinning *)
  let c = Registry_helpers.compute () in
  let _, sx = Shuffle.shuffle_binary (Dapper_util.Rng.create 5L) c.Link.cp_x86 in
  let _, sa = Shuffle.shuffle_binary (Dapper_util.Rng.create 5L) c.Link.cp_arm in
  let bx = Shuffle.average_bits sx and ba = Shuffle.average_bits sa in
  check Alcotest.bool
    (Printf.sprintf "x86 %.2f bits >= arm %.2f bits" bx ba)
    true (bx >= ba);
  check Alcotest.bool "x86 positive" true (bx > 0.0)

let suites =
  [ ( "security",
      [ Alcotest.test_case "gadget scan basics" `Quick test_gadget_scan_basics;
        Alcotest.test_case "popcorn baseline" `Quick test_popcorn_baseline_has_more_gadgets;
        Alcotest.test_case "exploits pwn unprotected" `Quick test_exploits_succeed_unprotected;
        Alcotest.test_case "shuffle mitigates" `Slow test_shuffle_mitigates;
        Alcotest.test_case "entropy math" `Quick test_entropy_math;
        Alcotest.test_case "entropy asymmetry" `Quick test_entropy_asymmetry ] ) ]
