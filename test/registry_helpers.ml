(* Shared compiled fixtures for test suites. *)

module Link = Dapper_codegen.Link

let compute_cache = ref None

let other_cache = ref None

let other_app () =
  match !other_cache with
  | Some c -> c
  | None ->
    let sp = Dapper_workloads.Registry.find "dhrystone" in
    let c =
      Link.compile ~app:"dhrystone" (Lazy.force sp.Dapper_workloads.Registry.sp_modul)
    in
    other_cache := Some c;
    c

let compute () =
  match !compute_cache with
  | Some c -> c
  | None ->
    let sp = Dapper_workloads.Registry.find "nginx" in
    let c = Link.compile ~app:"nginx" (Lazy.force sp.Dapper_workloads.Registry.sp_modul) in
    compute_cache := Some c;
    c
