open Dapper_isa
open Dapper_clite
open Dapper_codegen
open Dapper_machine
open Cl

let check = Alcotest.check

let run_both ?(fuel = 50_000_000) m ~code ~out =
  let compiled = Link.compile ~app:m.Dapper_ir.Ir.m_name m in
  List.iter
    (fun arch ->
      let p = Process.load (Link.binary_for compiled arch) in
      match Process.run_to_completion p ~fuel with
      | Process.Exited_run c ->
        check Alcotest.int (Printf.sprintf "%s exit" (Arch.name arch)) code (Int64.to_int c);
        check Alcotest.string (Printf.sprintf "%s out" (Arch.name arch)) out
          (Process.stdout_contents p)
      | Process.Crashed c ->
        Alcotest.fail
          (Printf.sprintf "crash on %s: pc=0x%Lx %s" (Arch.name arch) c.cr_pc c.cr_reason)
      | Process.Idle -> Alcotest.fail "deadlock"
      | Process.Progress -> Alcotest.fail "out of fuel")
    Arch.all

let test_print_int () =
  let m = create "t_print_int" in
  Cstd.add m;
  func m "main" [] (fun b ->
      do_ b (call "print_int" [ i 0 ]);
      do_ b (call "print_nl" []);
      do_ b (call "print_int" [ i 12345 ]);
      do_ b (call "print_nl" []);
      do_ b (call "print_int" [ i (-987) ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  run_both (finish m) ~code:0 ~out:"0\n12345\n-987\n"

let test_print_flt () =
  let m = create "t_print_flt" in
  Cstd.add m;
  func m "main" [] (fun b ->
      do_ b (call "print_flt" [ f 3.25 ]);
      do_ b (call "print_nl" []);
      do_ b (call "print_flt" [ f (-0.5) ]);
      do_ b (call "print_nl" []);
      do_ b (call "print_flt" [ f 2.0 ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  run_both (finish m) ~code:0 ~out:"3.250\n-0.500\n2.000\n"

let test_fib () =
  let m = create "t_fib" in
  Cstd.add m;
  func m "fib" [ ("n", Dapper_ir.Ir.I64) ] (fun b ->
      if_ b (le (v "n") (i 1)) (fun b -> ret b (v "n"));
      ret b (add (call "fib" [ sub (v "n") (i 1) ]) (call "fib" [ sub (v "n") (i 2) ])));
  func m "main" [] (fun b -> ret b (call "fib" [ i 12 ]));
  run_both (finish m) ~code:144 ~out:""

let test_string_ops () =
  let m = create "t_str" in
  Cstd.add m;
  let hello = str_lit m "hello\000" in
  func m "main" [] (fun b ->
      decl b "len" (call "strlen8" [ addr hello ]);
      decl_arr b "buf" 2;
      do_ b (call "memcpy8" [ addr "buf"; addr hello; v "len" ]);
      do_ b (call "print_str" [ addr "buf"; v "len" ]);
      do_ b (call "print_nl" []);
      ret b (v "len"));
  run_both (finish m) ~code:5 ~out:"hello\n"

let test_heap () =
  let m = create "t_heap" in
  Cstd.add m;
  func m "main" [] (fun b ->
      (* allocate 100 slots on the heap, fill with squares, sum some *)
      declp b "h" (call "sbrk" [ i 800 ]);
      for_ b "k" (i 0) (i 100) (fun b ->
          store_idx b (v "h") (v "k") (mul (v "k") (v "k")));
      decl b "sum" (i 0);
      for_ b "k" (i 0) (i 100) (fun b ->
          set b "sum" (add (v "sum") (idx (v "h") (v "k"))));
      ret b (rem_ (v "sum") (i 251)));
  (* sum of squares 0..99 = 328350; 328350 mod 251 = 78 *)
  run_both (finish m) ~code:(328350 mod 251) ~out:""

let test_break_continue () =
  let m = create "t_break" in
  Cstd.add m;
  func m "main" [] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (i 100) (fun b ->
          if_ b (eq (rem_ (v "k") (i 2)) (i 0)) (fun b -> continue_ b);
          if_ b (gt (v "k") (i 10)) (fun b -> break_ b);
          set b "acc" (add (v "acc") (v "k")));
      (* odd numbers 1..9: 1+3+5+7+9 = 25 *)
      ret b (v "acc"));
  run_both (finish m) ~code:25 ~out:""

let test_nested_loops () =
  let m = create "t_nest" in
  Cstd.add m;
  func m "main" [] (fun b ->
      decl b "acc" (i 0);
      for_ b "a" (i 0) (i 10) (fun b ->
          for_ b "c" (i 0) (i 10) (fun b ->
              if_ b (eq (v "c") (i 5)) (fun b -> break_ b);
              set b "acc" (add (v "acc") (i 1))));
      ret b (v "acc"));
  run_both (finish m) ~code:50 ~out:""

let test_float_kernel () =
  let m = create "t_fkernel" in
  Cstd.add m;
  func m "main" [] (fun b ->
      declf b "s" (f 0.0);
      for_ b "k" (i 1) (i 100) (fun b ->
          set b "s" (fadd (v "s") (fdiv (f 1.0) (i2f (mul (v "k") (v "k"))))));
      (* pi^2/6 ~ 1.6449; partial sum to 99 ~ 1.6349 *)
      do_ b (call "print_flt" [ v "s" ]);
      do_ b (call "print_nl" []);
      ret b (f2i (fmul (v "s") (f 100.0))));
  run_both (finish m) ~code:163 ~out:"1.634\n"

let test_tls_threads () =
  let m = create "t_tls_threads" in
  Cstd.add m;
  tls_var m "mystate" 8;
  global m "total" 8;
  global m "mtx" 8;
  func m "worker" [ ("seed", Dapper_ir.Ir.I64) ] (fun b ->
      set b "mystate" (v "seed");
      for_ b "k" (i 0) (i 50) (fun b ->
          set b "mystate" (add (v "mystate") (i 1)));
      do_ b (call "lock" [ addr "mtx" ]);
      set b "total" (add (v "total") (v "mystate"));
      do_ b (call "unlock" [ addr "mtx" ]);
      ret b (i 0));
  func m "main" [] (fun b ->
      decl b "t1" (call "spawn" [ fnptr "worker"; i 100 ]);
      decl b "t2" (call "spawn" [ fnptr "worker"; i 200 ]);
      do_ b (call "join" [ v "t1" ]);
      do_ b (call "join" [ v "t2" ]);
      (* 150 + 250 = 400 *)
      ret b (v "total"));
  run_both (finish m) ~code:400 ~out:""

let test_function_pointers () =
  let m = create "t_fptr" in
  Cstd.add m;
  func m "sq" [ ("x", Dapper_ir.Ir.I64) ] (fun b -> ret b (mul (v "x") (v "x")));
  func m "cube" [ ("x", Dapper_ir.Ir.I64) ] (fun b ->
      ret b (mul (v "x") (mul (v "x") (v "x"))));
  func m "apply" [ ("fn", Dapper_ir.Ir.Ptr); ("x", Dapper_ir.Ir.I64) ] (fun b ->
      ret b (call_ptr (v "fn") [ v "x" ]));
  func m "main" [] (fun b ->
      ret b (add (call "apply" [ fnptr "sq"; i 3 ]) (call "apply" [ fnptr "cube"; i 2 ])));
  run_both (finish m) ~code:17 ~out:""

let test_validation_catches_unknown_var () =
  let m = create "t_bad" in
  check Alcotest.bool "raises" true
    (match func m "main" [] (fun b -> ret b (v "nonexistent")) with
     | exception Cl.Clite_error _ -> true
     | () -> false)

let suites =
  [ ( "clite",
      [ Alcotest.test_case "print_int" `Quick test_print_int;
        Alcotest.test_case "print_flt" `Quick test_print_flt;
        Alcotest.test_case "fib" `Quick test_fib;
        Alcotest.test_case "string ops" `Quick test_string_ops;
        Alcotest.test_case "heap" `Quick test_heap;
        Alcotest.test_case "break/continue" `Quick test_break_continue;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
        Alcotest.test_case "float kernel" `Quick test_float_kernel;
        Alcotest.test_case "tls threads" `Quick test_tls_threads;
        Alcotest.test_case "function pointers" `Quick test_function_pointers;
        Alcotest.test_case "validation" `Quick test_validation_catches_unknown_var ] ) ]
